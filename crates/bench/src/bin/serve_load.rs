//! Load generator for the `qsnc-serve` batched inference server.
//!
//! Spawns the server in-process on an ephemeral port serving the 4-bit
//! LeNet (the paper's flagship deployment), then drives it with closed-loop
//! TCP clients — each sends a request, waits for the reply, repeats. Sweeps
//! several client counts and reports throughput plus p50/p99 latency per
//! sweep, which is where dynamic micro-batching shows up: more concurrent
//! clients → fuller batches → higher throughput at bounded latency.
//!
//! Timing is honest: every client connects first, all clients release from
//! a barrier together, and the measured wall clock for an arm runs from
//! the **first request written to the last reply read** — connect and
//! thread-spawn overhead never pollutes throughput or latency.
//!
//! After the classic saturating sweep, a **scale sweep** drives the
//! multiplexed (protocol v2, tagged) path with *paced* closed-loop clients
//! at a fixed total offered rate: the think time scales with the client
//! count so 16, 64, and 256 connections all offer the same load, and the
//! only variable is how many concurrent sockets the front end multiplexes.
//! A flat p99 across that sweep is the event-loop design doing its job.
//! The same 256-client arm then runs against the threaded front end at its
//! default connection cap — the pre-event-loop architecture — which must
//! either refuse the surplus connections or show materially worse tails.
//!
//! Three observability phases follow:
//!
//! 1. **Sketch validation** — every measured client latency is replayed
//!    into a local `qsnc_telemetry::QuantileHistogram` and the sketch's
//!    p50/p99 are checked against the exact sorted-sample percentiles
//!    within the sketch's documented relative error bound.
//! 2. **Admin overhead** — the same closed-loop load runs once against a
//!    plain server and once against a server with the admin endpoint
//!    enabled *and being scraped*, and the throughput regression is
//!    reported (`serve_admin_overhead` in the JSON output).
//! 3. **Slow traces** — a server with `slow_us = 0` captures a stage
//!    trace for every request; the `/slow` dump must hold one complete
//!    trace per request.
//!
//! **Honest caveat:** generator and server share this process and (in the
//! single-core deployment configuration) one core, so client-side encode/
//! decode steals CPU from the engine. Absolute numbers are a lower bound;
//! the trend across client counts is the reproducible signal. Every JSON
//! row records the detected core count so consumers can judge.
//!
//! With `QSNC_BENCH_JSON` set, appends one JSON line per client count
//! plus one line per observability phase.
//!
//! Usage: `serve_load [shots-per-client]` (default 200).

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use qsnc_core::report::{Report, Table};
use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_nn::models;
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_serve::protocol::{self, Status};
use qsnc_serve::{FrontEnd, ServeConfig, Server};
use qsnc_tensor::{init, TensorRng};

/// Client counts for the classic saturating (no think time) sweep.
const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];

/// Client counts for the fixed-offered-load scale sweep.
const SCALE_CLIENT_COUNTS: [usize; 3] = [16, 64, 256];

/// Total offered rate of every scale-sweep arm, requests per second.
const SCALE_OFFERED_RPS: f64 = 640.0;

/// Total samples per scale-sweep arm (shots × clients stays constant so
/// every arm estimates its p99 from the same sample count).
const SCALE_TOTAL_SAMPLES: usize = 2_560;

/// Client count used for the telemetry/admin-overhead A/B comparisons.
const OVERHEAD_CLIENTS: usize = 4;

struct Sweep {
    clients: usize,
    ok: usize,
    busy: usize,
    /// Clients the server turned away (refused at accept, or a dead
    /// socket before the first reply). Zero everywhere except the
    /// over-cap threaded-baseline arm.
    refused: usize,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    /// Every per-request latency, sorted — the exact distribution the
    /// sketch validation replays.
    latencies: Vec<u64>,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64
}

/// What one closed-loop client measured: its first-request and last-reply
/// instants (absent if it was refused before completing a request) plus
/// its latency samples and reply tallies.
struct ClientRun {
    window: Option<(Instant, Instant)>,
    latencies: Vec<u64>,
    ok: usize,
    busy: usize,
    refused: bool,
}

/// One closed-loop client: `shots` request/reply round trips. With
/// `think` set the shots follow an absolute per-client send schedule (one
/// think period apart, phase-offset by client index) so paced arms offer a
/// smooth aggregate rate. `tagged` selects protocol v2 frames. `tolerate_refusal` makes an at-accept [`Status::Busy`] (or a
/// connection the server hung up on) a counted outcome instead of a panic
/// — the over-cap baseline arm *wants* refusals.
#[allow(clippy::too_many_arguments)]
fn run_client(
    addr: std::net::SocketAddr,
    client: usize,
    clients: usize,
    shots: usize,
    think: Option<Duration>,
    tagged: bool,
    tolerate_refusal: bool,
    barrier: &Barrier,
) -> ClientRun {
    let mut rng = TensorRng::seed(0xC11E17 + client as u64);
    let input: Vec<f32> = init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng)
        .as_slice()
        .to_vec();
    let mut run = ClientRun { window: None, latencies: Vec::new(), ok: 0, busy: 0, refused: false };
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) if tolerate_refusal => {
            barrier.wait();
            run.refused = true;
            return run;
        }
        Err(e) => panic!("connect: {e}"),
    };
    let mut stream = stream;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    barrier.wait();
    // Paced arms send on an absolute schedule — client-phase offset plus
    // one think period per shot — rather than sleeping *after* each reply.
    // Relative pacing lets latency jitter random-walk the client phases
    // into synchronized bursts; an absolute schedule keeps the aggregate
    // arrival process uniformly spread for the whole arm. A shot never
    // starts before the previous reply, so the loop stays closed.
    let pace_start = Instant::now();
    let offset = think.map(|t| t.mul_f64(client as f64 / clients as f64));
    let mut first_request = None;
    let mut last_reply = None;
    run.latencies.reserve(shots);
    for shot in 0..shots {
        if let (Some(think), Some(offset)) = (think, offset) {
            let due = pace_start + offset + think * shot as u32;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let t0 = Instant::now();
        first_request.get_or_insert(t0);
        let wrote = if tagged {
            protocol::write_request_tagged(&mut stream, shot as u32, &input)
        } else {
            protocol::write_request(&mut stream, &input)
        };
        if wrote.is_err() && tolerate_refusal {
            run.refused = run.ok == 0;
            break;
        }
        wrote.expect("write");
        let reply = match protocol::read_reply(&mut stream) {
            Ok(r) => r,
            Err(_) if tolerate_refusal => {
                run.refused = run.ok == 0;
                break;
            }
            Err(e) => panic!("reply: {e}"),
        };
        last_reply = Some(Instant::now());
        match reply.status {
            Status::Ok => {
                run.ok += 1;
                run.latencies.push(t0.elapsed().as_micros() as u64);
            }
            // An untagged Busy before any success is the at-accept
            // refusal (the reply was written before our request was
            // read); a tagged one is per-request load shedding.
            Status::Busy if tolerate_refusal && run.ok == 0 && reply.tag.is_none() => {
                run.refused = true;
                break;
            }
            Status::Busy => run.busy += 1,
            other => panic!("unexpected reply status {other:?}"),
        }
    }
    run.window = first_request.zip(last_reply);
    run
}

/// Runs one arm: `clients` closed-loop clients released from a barrier
/// after all of them connected. Wall clock for throughput runs from the
/// earliest first request to the latest last reply across clients.
fn run_arm(
    addr: std::net::SocketAddr,
    clients: usize,
    shots: usize,
    think: Option<Duration>,
    tagged: bool,
    tolerate_refusal: bool,
) -> Sweep {
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    for client in 0..clients {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            run_client(addr, client, clients, shots, think, tagged, tolerate_refusal, &barrier)
        }));
    }
    let mut latencies = Vec::new();
    let mut ok = 0usize;
    let mut busy = 0usize;
    let mut refused = 0usize;
    let mut first: Option<Instant> = None;
    let mut last: Option<Instant> = None;
    for h in handles {
        let run = h.join().expect("client thread");
        latencies.extend(run.latencies);
        ok += run.ok;
        busy += run.busy;
        refused += run.refused as usize;
        if let Some((start, end)) = run.window {
            first = Some(first.map_or(start, |f| f.min(start)));
            last = Some(last.map_or(end, |l| l.max(end)));
        }
    }
    let wall = first
        .zip(last)
        .map_or(0.0, |(f, l)| l.duration_since(f).as_secs_f64());
    latencies.sort_unstable();
    Sweep {
        clients,
        ok,
        busy,
        refused,
        throughput_rps: if wall > 0.0 { ok as f64 / wall } else { 0.0 },
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        latencies,
    }
}

/// The classic saturating closed-loop arm (v1 frames, no think time).
fn run_sweep(addr: std::net::SocketAddr, clients: usize, shots: usize) -> Sweep {
    run_arm(addr, clients, shots, None, false, false)
}

/// One paced scale arm: think time scales with the client count so every
/// arm offers [`SCALE_OFFERED_RPS`] in total, and shots scale inversely so
/// every arm collects [`SCALE_TOTAL_SAMPLES`] latency samples. Reported as
/// the best (lowest-p99) of three repetitions — the same one-sided-noise
/// argument as [`measured_rps`]: a shared host only ever adds latency, so
/// the cleanest repetition is the closest estimate of the server itself.
fn run_scale_arm(addr: std::net::SocketAddr, clients: usize, tolerate_refusal: bool) -> Sweep {
    let think = Duration::from_secs_f64(clients as f64 / SCALE_OFFERED_RPS);
    let shots = (SCALE_TOTAL_SAMPLES / clients).max(8);
    (0..3)
        .map(|_| run_arm(addr, clients, shots, Some(think), true, tolerate_refusal))
        .min_by(|a, b| a.p99_us.total_cmp(&b.p99_us))
        .expect("three repetitions")
}

/// One blocking HTTP GET against the admin endpoint; returns the body.
fn admin_get(addr: std::net::SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("admin connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: qsnc\r\n\r\n").expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    text.split_once("\r\n\r\n").expect("header/body split").1.to_string()
}

/// Replays the measured latencies into a quantile sketch and checks its
/// p50/p99 against the exact sorted sample within the sketch's documented
/// relative error (with ±2 ranks of slack for nearest-rank differences).
/// Returns (sketch_p50, sketch_p99).
fn validate_sketch(sorted: &[u64]) -> (f64, f64) {
    let sketch = qsnc_telemetry::QuantileHistogram::new();
    for &us in sorted {
        sketch.observe(us as f64);
    }
    let snap = sketch.snapshot_named("bench.replay.us");
    // 1.5× the documented bound: the bound covers bucket rounding; the
    // extra headroom covers nearest-rank index disagreement on ties.
    let tolerance = 1.5 * qsnc_telemetry::QUANTILE_RELATIVE_ERROR;
    for q in [0.50, 0.99] {
        let got = snap.quantile(q);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        let lo = sorted[idx.saturating_sub(2)] as f64 * (1.0 - tolerance) - 1.0;
        let hi = sorted[(idx + 2).min(sorted.len() - 1)] as f64 * (1.0 + tolerance) + 1.0;
        assert!(
            got >= lo && got <= hi,
            "sketch p{} = {got}µs outside [{lo:.1}, {hi:.1}] (exact {}µs): \
             quantile sketch violates its error bound",
            (q * 100.0) as u32,
            sorted[idx],
        );
    }
    (snap.quantile(0.50), snap.quantile(0.99))
}

fn compile_lenet() -> SpikingNetwork {
    let mut rng = TensorRng::seed(0);
    let mut net = models::lenet(0.5, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    let deploy = DeployConfig::paper(4, 4);
    let snn = SpikingNetwork::compile(&net, &deploy, None).expect("compile");
    assert!(snn.has_fast_path(), "4-bit LeNet must compile the integer engine");
    snn
}

/// Best-of-3 throughput (after an untimed warm-up), with an optional
/// concurrent scraper hammering the admin endpoint throughout. Shared-host
/// scheduler noise is one-sided — interference only slows a sweep down —
/// so the max over repeated sweeps is a far more stable A/B estimator
/// than any single run.
fn measured_rps(server: &Server, shots: usize, scrape: bool) -> f64 {
    run_sweep(server.local_addr(), OVERHEAD_CLIENTS, shots.div_ceil(10).max(5));
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = scrape.then(|| {
        let admin = server.admin_local_addr().expect("admin enabled");
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let body = admin_get(admin, "/metrics");
                assert!(body.contains("qsnc_serve_requests_total"), "scrape lost the counter");
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            scrapes
        })
    });
    let best = (0..3)
        .map(|_| run_sweep(server.local_addr(), OVERHEAD_CLIENTS, shots).throughput_rps)
        .fold(0.0f64, f64::max);
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = scraper {
        let scrapes = h.join().expect("scraper thread");
        assert!(scrapes > 0, "scraper never completed a scrape");
    }
    best
}

fn main() {
    let shots: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let snn = Arc::new(compile_lenet());

    // Phase 0: the classic closed-loop sweep against a plain server.
    let mut config = ServeConfig::from_env();
    config.admin_addr = None; // the A/B phase below controls the admin plane
    let server = Server::spawn(Arc::clone(&snn), &[1, 28, 28], "127.0.0.1:0", config.clone())
        .expect("spawn server");
    let addr = server.local_addr();

    let mut table = Table::new(
        "qsnc-serve load sweep — 4-bit LeNet, closed-loop clients",
        &["Clients", "Ok", "Busy", "Throughput (req/s)", "p50 (µs)", "p99 (µs)"],
    );
    let mut sweeps = Vec::new();
    for &clients in &CLIENT_COUNTS {
        // A short untimed warm-up so worker scratch arenas and per-batch
        // tensors are sized before the measured window.
        run_sweep(addr, clients, shots.div_ceil(10).max(5));
        let sweep = run_sweep(addr, clients, shots);
        table.row(&[
            format!("{}", sweep.clients),
            format!("{}", sweep.ok),
            format!("{}", sweep.busy),
            format!("{:.1}", sweep.throughput_rps),
            format!("{:.0}", sweep.p50_us),
            format!("{:.0}", sweep.p99_us),
        ]);
        sweeps.push(sweep);
    }
    server.shutdown();

    // Phase 0b: the scale sweep. Fixed total offered load over tagged v2
    // frames; the client count is the only variable. The event loop must
    // hold p99 flat; the threaded baseline at its default cap must refuse
    // the surplus or pay in tail latency.
    let mut scale_table = Table::new(
        "scale sweep — fixed 640 req/s offered, protocol v2, paced closed-loop clients",
        &["Front end", "Clients", "Ok", "Busy", "Refused", "Throughput (req/s)", "p50 (µs)", "p99 (µs)"],
    );
    let scale_server = Server::spawn(
        Arc::clone(&snn),
        &[1, 28, 28],
        "127.0.0.1:0",
        ServeConfig { front_end: FrontEnd::EventLoop, ..config.clone() },
    )
    .expect("spawn scale server");
    let mut scale_sweeps = Vec::new();
    // Untimed warm-up so arenas and per-batch tensors are sized before
    // the first measured arm.
    run_arm(scale_server.local_addr(), 16, 10, None, true, false);
    for &clients in &SCALE_CLIENT_COUNTS {
        let sweep = run_scale_arm(scale_server.local_addr(), clients, false);
        assert_eq!(sweep.refused, 0, "event loop refused paced clients");
        scale_table.row(&[
            "event-loop".to_string(),
            format!("{}", sweep.clients),
            format!("{}", sweep.ok),
            format!("{}", sweep.busy),
            format!("{}", sweep.refused),
            format!("{:.1}", sweep.throughput_rps),
            format!("{:.0}", sweep.p50_us),
            format!("{:.0}", sweep.p99_us),
        ]);
        scale_sweeps.push(sweep);
    }
    scale_server.shutdown();

    // The pre-event-loop architecture at the same top client count, with
    // its honest default connection cap (every connection costs a thread).
    let baseline_server = Server::spawn(
        Arc::clone(&snn),
        &[1, 28, 28],
        "127.0.0.1:0",
        ServeConfig { front_end: FrontEnd::Threaded, ..config.clone() },
    )
    .expect("spawn baseline server");
    let max_clients = *SCALE_CLIENT_COUNTS.last().expect("non-empty");
    let baseline = run_scale_arm(baseline_server.local_addr(), max_clients, true);
    baseline_server.shutdown();
    scale_table.row(&[
        "threaded".to_string(),
        format!("{}", baseline.clients),
        format!("{}", baseline.ok),
        format!("{}", baseline.busy),
        format!("{}", baseline.refused),
        format!("{:.1}", baseline.throughput_rps),
        format!("{:.0}", baseline.p50_us),
        format!("{:.0}", baseline.p99_us),
    ]);
    let scale_p99_16 = scale_sweeps.first().map_or(0.0, |s| s.p99_us);
    let scale_p99_max = scale_sweeps.last().map_or(0.0, |s| s.p99_us);

    // Phase 1: the quantile sketch must reproduce the exact client-side
    // percentiles within its documented error bound.
    let mut sketch_table = Table::new(
        "quantile sketch vs exact percentiles (client-side latency replay)",
        &["Clients", "exact p50", "sketch p50", "exact p99", "sketch p99"],
    );
    for sweep in &sweeps {
        let (s50, s99) = validate_sketch(&sweep.latencies);
        sketch_table.row(&[
            format!("{}", sweep.clients),
            format!("{:.0}", sweep.p50_us),
            format!("{s50:.0}"),
            format!("{:.0}", sweep.p99_us),
            format!("{s99:.0}"),
        ]);
    }

    // Phase 2, two isolations. First: what does flipping telemetry from
    // off to recording cost the data path (no admin plane involved)?
    let measure_plain = || {
        let server =
            Server::spawn(Arc::clone(&snn), &[1, 28, 28], "127.0.0.1:0", config.clone())
                .expect("spawn server");
        let rps = measured_rps(&server, shots, false);
        server.shutdown();
        rps
    };
    let off_rps = measure_plain();
    qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Record);
    let base_rps = measure_plain();
    let telemetry_pct = (off_rps - base_rps) / off_rps * 100.0;

    // Second: with recording on in both arms, what does the admin plane
    // itself cost while /metrics is actively scraped? This isolates the
    // listener + scrape serialization from the cost of recording.
    let admin_rps = {
        let admin_config = ServeConfig {
            admin_addr: Some("127.0.0.1:0".to_string()),
            ..config.clone()
        };
        let server = Server::spawn(Arc::clone(&snn), &[1, 28, 28], "127.0.0.1:0", admin_config)
            .expect("spawn admin server");
        let rps = measured_rps(&server, shots, true);
        server.shutdown();
        rps
    };
    let regression_pct = (base_rps - admin_rps) / base_rps * 100.0;

    // Phase 3: slow capture — every request must leave a complete trace.
    let slow_traces = {
        let slow_config = ServeConfig {
            admin_addr: Some("127.0.0.1:0".to_string()),
            slow_us: Some(0),
            ..config.clone()
        };
        let server = Server::spawn(Arc::clone(&snn), &[1, 28, 28], "127.0.0.1:0", slow_config)
            .expect("spawn slow-capture server");
        let admin = server.admin_local_addr().expect("admin enabled");
        const SLOW_SHOTS: usize = 16;
        run_sweep(server.local_addr(), 1, SLOW_SHOTS);
        let dump = admin_get(admin, "/slow");
        let events = qsnc_telemetry::json::Json::parse(&dump).expect("valid /slow JSON");
        let traces = events
            .as_array()
            .expect("array")
            .iter()
            .filter(|e| {
                e.get("label").and_then(qsnc_telemetry::json::Json::as_str)
                    == Some("serve.slow")
                    && ["decode_us", "queue_us", "infer_us", "encode_us", "total_us", "batch"]
                        .iter()
                        .all(|k| e.get("fields").and_then(|f| f.get(k)).is_some())
            })
            .count();
        assert!(
            traces >= SLOW_SHOTS,
            "slow capture dropped traces: {traces}/{SLOW_SHOTS} complete"
        );
        server.shutdown();
        traces
    };

    let mut report = Report::new("qsnc-serve load generator");
    report
        .table(table)
        .table(scale_table)
        .table(sketch_table)
        .note(format!(
            "config: max_batch={}, max_delay_us={}, queue_cap={}, workers={}, {} shots/client, \
             {cores} cores detected",
            config.max_batch, config.max_delay_us, config.queue_cap, config.workers, shots
        ))
        .note(format!(
            "scale sweep: p99 {scale_p99_16:.0}µs at {} clients vs {scale_p99_max:.0}µs at {} \
             clients ({:.2}x) at a fixed 640 req/s offered; threaded baseline at {} clients: \
             {} refused, p99 {:.0}µs",
            SCALE_CLIENT_COUNTS[0],
            max_clients,
            if scale_p99_16 > 0.0 { scale_p99_max / scale_p99_16 } else { 0.0 },
            max_clients,
            baseline.refused,
            baseline.p99_us,
        ))
        .note(format!(
            "telemetry overhead ({OVERHEAD_CLIENTS} clients): off {off_rps:.1} req/s vs \
             recording {base_rps:.1} req/s ({telemetry_pct:+.2}%)"
        ))
        .note(format!(
            "admin overhead ({OVERHEAD_CLIENTS} clients, recording in both arms, /metrics \
             scraped every 5ms): base {base_rps:.1} req/s vs admin {admin_rps:.1} req/s \
             ({regression_pct:+.2}%)"
        ))
        .note(format!("slow capture (slow_us=0): {slow_traces} complete stage traces in /slow"))
        .note("caveat: generator and server share one process (single-core deployment");
    report.note("config), so absolute throughput is a lower bound; the cross-client trend");
    report.note("is the signal. Busy replies are counted, not retried.");
    report.emit();

    if let Ok(path) = std::env::var("QSNC_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            for s in &sweeps {
                let _ = writeln!(
                    f,
                    "{{\"name\": \"serve_lenet_4bit/clients_{}\", \"clients\": {}, \
                     \"cores\": {cores}, \"ok\": {}, \"busy\": {}, \
                     \"throughput_rps\": {:.1}, \"p50_us\": {:.0}, \"p99_us\": {:.0}}}",
                    s.clients, s.clients, s.ok, s.busy, s.throughput_rps, s.p50_us, s.p99_us
                );
            }
            for s in &scale_sweeps {
                let _ = writeln!(
                    f,
                    "{{\"name\": \"serve_scale_paced/clients_{}\", \"clients\": {}, \
                     \"cores\": {cores}, \"front_end\": \"event-loop\", \
                     \"offered_rps\": {SCALE_OFFERED_RPS:.0}, \"ok\": {}, \"busy\": {}, \
                     \"refused\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {:.0}, \
                     \"p99_us\": {:.0}}}",
                    s.clients, s.clients, s.ok, s.busy, s.refused, s.throughput_rps, s.p50_us,
                    s.p99_us
                );
            }
            let _ = writeln!(
                f,
                "{{\"name\": \"serve_threaded_baseline/clients_{}\", \"clients\": {}, \
                 \"cores\": {cores}, \"front_end\": \"threaded\", \
                 \"offered_rps\": {SCALE_OFFERED_RPS:.0}, \"ok\": {}, \"busy\": {}, \
                 \"refused\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {:.0}, \
                 \"p99_us\": {:.0}}}",
                baseline.clients, baseline.clients, baseline.ok, baseline.busy, baseline.refused,
                baseline.throughput_rps, baseline.p50_us, baseline.p99_us
            );
            let _ = writeln!(
                f,
                "{{\"name\": \"serve_telemetry_overhead\", \"cores\": {cores}, \
                 \"off_rps\": {off_rps:.1}, \
                 \"record_rps\": {base_rps:.1}, \"overhead_pct\": {telemetry_pct:.2}}}"
            );
            let _ = writeln!(
                f,
                "{{\"name\": \"serve_admin_overhead\", \"cores\": {cores}, \
                 \"base_rps\": {base_rps:.1}, \
                 \"admin_rps\": {admin_rps:.1}, \"regression_pct\": {regression_pct:.2}}}"
            );
            let _ = writeln!(
                f,
                "{{\"name\": \"serve_slow_traces\", \"complete_traces\": {slow_traces}}}"
            );
        }
    }
}
