//! Regenerates **Table 5**: memristor SNC system evaluation — speed,
//! energy, and area of the 4-bit and 3-bit designs versus the 8-bit
//! dynamic fixed-point baseline, on all three networks.
//!
//! Pure hardware model (no training): geometry comes from Eq. 1 over the
//! paper-structure networks; the component constants are calibrated on the
//! paper's LeNet rows (see `qsnc_memristor::hwmodel`).
//!
//! ```bash
//! cargo run -p qsnc-bench --bin table5 --release
//! ```

use qsnc_core::report::{Report, Table};
use qsnc_memristor::{network_geometry, HwModel, HwReport};
use qsnc_nn::models::build_model;
use qsnc_nn::ModelKind;
use qsnc_tensor::TensorRng;

/// Paper values for side-by-side comparison: (config, speed MHz, speedup,
/// energy µJ, saving, area mm², saving).
const PAPER_ROWS: [(&str, f32, f32, f32, f32, f32, f32); 9] = [
    ("Lenet 8-bit", 0.64, 1.0, 4.7, 0.0, 1.48, 0.0),
    ("Lenet 4-bit", 8.93, 13.9, 0.57, 0.879, 1.04, 0.297),
    ("Lenet 3-bit", 15.63, 24.4, 0.27, 0.943, 0.93, 0.372),
    ("Alexnet 8-bit", 0.27, 1.0, 337.0, 0.0, 34.3, 0.0),
    ("Alexnet 4-bit", 2.66, 9.8, 36.9, 0.891, 24.0, 0.30),
    ("Alexnet 3-bit", 3.79, 11.8, 26.3, 0.922, 21.4, 0.376),
    ("Resnet 8-bit", 0.11, 1.0, 19200.0, 0.0, 937.3, 0.0),
    ("Resnet 4-bit", 1.38, 12.5, 1500.0, 0.922, 656.2, 0.30),
    ("Resnet 3-bit", 2.20, 20.0, 935.0, 0.95, 585.9, 0.375),
];

fn main() {
    let model = HwModel::calibrated();
    let mut rng = TensorRng::seed(0);
    let mut table = Table::new(
        "Table 5 — Memristor SNC system evaluation (ours vs paper)",
        &[
            "Config",
            "Speed (MHz)",
            "Speedup",
            "Energy (µJ)",
            "E-saving",
            "Area (mm²)",
            "A-saving",
            "Paper speedup",
            "Paper E-saving",
            "Paper A-saving",
        ],
    );
    let mut paper_iter = PAPER_ROWS.iter();
    for kind in [ModelKind::Lenet, ModelKind::Alexnet, ModelKind::Resnet] {
        let net = build_model(kind, 1.0, 10, &mut rng);
        let geo = network_geometry(&net.synaptic_descriptors(), 32);
        let base = model.evaluate(&geo, 8, 8);
        let mut push = |label: &str, r: &HwReport, paper: &(&str, f32, f32, f32, f32, f32, f32)| {
            table.row(&[
                format!("{kind} {label}"),
                format!("{:.2}", r.speed_mhz),
                format!("{:.1}x", r.speedup_over(&base)),
                format!("{:.2}", r.energy_uj),
                format!("{:.1}%", r.energy_saving_over(&base) * 100.0),
                format!("{:.2}", r.area_mm2),
                format!("{:.1}%", r.area_saving_over(&base) * 100.0),
                format!("{:.1}x", paper.2),
                format!("{:.1}%", paper.4 * 100.0),
                format!("{:.1}%", paper.6 * 100.0),
            ]);
        };
        push("8-bit", &base, paper_iter.next().unwrap());
        let r4 = model.evaluate(&geo, 4, 4);
        push("4-bit", &r4, paper_iter.next().unwrap());
        let r3 = model.evaluate(&geo, 3, 3);
        push("3-bit", &r3, paper_iter.next().unwrap());
    }
    let mut report = Report::new("Table 5 — Memristor SNC system evaluation");
    report
        .table(table)
        .note("note: absolute energy/area differ for Alexnet/Resnet because our widths are the")
        .note("open LeNet-class/CIFAR-class topologies, not the paper's exact channel counts;")
        .note("the within-network ratios (speedup, savings) are the reproduced quantities.");
    report.emit();
}
