//! Extension ablation: measured signal sparsity → energy.
//!
//! The paper argues (Sec. 3.1, Fig. 4) that Neuron Convergence makes
//! inter-layer signals sparse, and sparse signals mean fewer spikes and
//! lower energy. This binary closes that loop quantitatively: it measures
//! the actual spike activity of trained networks (with and without the
//! regularizer) and feeds the measured activity factor into the hardware
//! energy model.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin ablation_sparsity --release
//! ```

use qsnc_bench::{Workload, SEED};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::{train_quant_aware, QuantConfig};
use qsnc_memristor::{network_geometry, HwModel};
use qsnc_nn::{Mode, ModelKind};
use qsnc_quant::{RegKind, WeightQuantMethod};

/// Mean spike activity: average signal value divided by the window length,
/// over all signal stages (fraction of slots carrying a spike).
fn measured_activity(model: &mut qsnc_core::QuantizedModel, sample: &qsnc_nn::Batch, bits: u32) -> f32 {
    model.switch.set_enabled(true);
    model.net.forward(&sample.images, Mode::Eval);
    let window = (1u32 << bits) as f32;
    let taps = model.net.activation_taps();
    if taps.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for tap in &taps {
        total += tap.sum();
        count += tap.len();
    }
    (total / count as f32) / window
}

fn main() {
    let bits = 4;
    let w = Workload::standard(ModelKind::Lenet);
    let sample = &w.test.batches(256, None)[0];

    let variants = [
        ("no regularizer", RegKind::None, 0.0f32),
        ("neuron convergence", RegKind::NeuronConvergence, 1e-4),
    ];
    let mut table = Table::new(
        "Signal sparsity → energy (4-bit LeNet, measured activity in the energy model)",
        &["Variant", "Accuracy", "Mean activity ρ", "Energy (µJ)", "vs fixed ρ=0.5"],
    );
    let hw = HwModel::calibrated();
    let mut rng_net = qsnc_tensor::TensorRng::seed(0);
    let paper_net = qsnc_nn::models::lenet(1.0, 10, &mut rng_net);
    let geo = network_geometry(&paper_net.synaptic_descriptors(), 32);
    let fixed = hw.evaluate(&geo, bits, bits);

    for (name, kind, lambda) in variants {
        eprintln!("training LeNet ({name})…");
        let quant = QuantConfig {
            activation_bits: bits,
            weight_bits: bits,
            lambda,
            alpha: 0.1,
            regularizer: kind,
            weight_method: WeightQuantMethod::Clustered,
            finetune_epochs: 1,
        };
        let mut model = train_quant_aware(
            ModelKind::Lenet,
            w.width,
            &w.settings,
            &quant,
            &w.train,
            &w.test,
            SEED,
        );
        let rho = measured_activity(&mut model, sample, bits);
        let mut hw_rho = hw;
        hw_rho.activity = rho.max(1e-3);
        let report = hw_rho.evaluate(&geo, bits, bits);
        table.row(&[
            name.to_string(),
            pct(model.quantized_accuracy),
            format!("{rho:.3}"),
            format!("{:.3}", report.energy_uj),
            format!("{:+.1}%", (report.energy_uj / fixed.energy_uj - 1.0) * 100.0),
        ]);
    }
    let mut report = Report::new("Ablation — measured sparsity in the energy model");
    report
        .table(table)
        .note("expected: the regularized network shows lower mean activity and therefore")
        .note("lower modelled dynamic energy at equal accuracy.");
    report.emit();
}
