//! Regenerates **Table 4**: accuracy with *both* signals and weights
//! quantized, with and without the proposed method, plus the 8-bit dynamic
//! fixed-point baseline (Gysel et al., ref. \[23\]).
//!
//! ```bash
//! cargo run -p qsnc-bench --bin table4 --release
//! ```

use qsnc_bench::{
    calibrated_quantizer, recovery_row, restore_weights, snapshot_weights,
    splice_calibrated_stages, Workload, RECOVERY_HEADER, SEED, TABLE_BITS,
};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::{
    dynamic_fixed_baseline, train_float, train_quant_aware, visit_signal_stages, QuantConfig,
};
use qsnc_nn::train::evaluate;
use qsnc_nn::ModelKind;
use qsnc_quant::{quantize_network_weights, WeightQuantMethod};

fn main() {
    let mut report = Report::new("Table 4 — signals AND weights quantized");
    for kind in [ModelKind::Lenet, ModelKind::Alexnet, ModelKind::Resnet] {
        let w = Workload::standard(kind);
        let test_batches = w.test.batches(64, None);
        let calibration = &w.train.batches(128, None)[0];

        eprintln!("[{kind}] training fp32 baseline…");
        let (mut float_net, ideal) =
            train_float(kind, w.width, &w.settings, &w.train, &w.test, SEED);
        let snapshot = snapshot_weights(&mut float_net);

        // 8-bit dynamic fixed point baseline on a fresh float training
        // (the stages it splices stay specific to that copy).
        eprintln!("[{kind}] 8-bit dynamic fixed-point baseline…");
        let (mut dyn_net, _) = train_float(kind, w.width, &w.settings, &w.train, &w.test, SEED);
        let dyn8 = dynamic_fixed_baseline(&mut dyn_net, 8, calibration, &test_batches);

        // "w/o" sweep: splice unregularized stages once, then per bit width
        // restore float weights, recalibrate the uniform signal scale, and
        // direct-quantize the weights.
        let (switch, global_max) = splice_calibrated_stages(&mut float_net, calibration);

        let mut table = Table::new(
            format!(
                "Table 4 — {kind}: signals AND weights quantized, ideal {}, 8-bit dyn-FP {}",
                pct(ideal),
                pct(dyn8)
            ),
            &RECOVERY_HEADER,
        );
        for bits in TABLE_BITS {
            restore_weights(&mut float_net, &snapshot);
            let q = calibrated_quantizer(bits, global_max);
            visit_signal_stages(&mut float_net, |s| s.set_quantizer(q));
            quantize_network_weights(&mut float_net, bits, WeightQuantMethod::DirectFixedPoint);
            switch.set_enabled(true);
            let without = evaluate(&mut float_net, &test_batches);

            eprintln!("[{kind}] {bits}-bit proposed…");
            let quant = QuantConfig::paper(bits, bits);
            let model =
                train_quant_aware(kind, w.width, &w.settings, &quant, &w.train, &w.test, SEED);
            recovery_row(&mut table, bits, without, model.quantized_accuracy, ideal);
        }
        report.table(table);
    }
    report
        .note("paper Table 4 (MNIST/CIFAR-10): Lenet 8-bit [23] 98.16%, 4-bit w/ 98.14%;")
        .note("Alexnet 8-bit [23] 84.5%, 4-bit w/ 83.05%; Resnet 8-bit [23] 91.75%, 4-bit w/ 90.33%.");
    report.emit();
}
