//! Regenerates **Table 4**: accuracy with *both* signals and weights
//! quantized, with and without the proposed method, plus the 8-bit dynamic
//! fixed-point baseline (Gysel et al., ref. \[23\]).
//!
//! ```bash
//! cargo run -p qsnc-bench --bin table4 --release
//! ```

use qsnc_bench::{restore_weights, snapshot_weights, Workload, SEED, TABLE_BITS};
use qsnc_core::report::{pct, pct_delta, Table};
use qsnc_core::{
    calibrate_stage_maxima, dynamic_fixed_baseline, train_float, train_quant_aware,
    visit_signal_stages, QuantConfig,
};
use qsnc_nn::train::evaluate;
use qsnc_nn::ModelKind;
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    RegKind, WeightQuantMethod,
};

fn main() {
    for kind in [ModelKind::Lenet, ModelKind::Alexnet, ModelKind::Resnet] {
        let w = Workload::standard(kind);
        let test_batches = w.test.batches(64, None);
        let calibration = &w.train.batches(128, None)[0];

        eprintln!("[{kind}] training fp32 baseline…");
        let (mut float_net, ideal) =
            train_float(kind, w.width, &w.settings, &w.train, &w.test, SEED);
        let snapshot = snapshot_weights(&mut float_net);

        // 8-bit dynamic fixed point baseline on a fresh float training
        // (the stages it splices stay specific to that copy).
        eprintln!("[{kind}] 8-bit dynamic fixed-point baseline…");
        let (mut dyn_net, _) = train_float(kind, w.width, &w.settings, &w.train, &w.test, SEED);
        let dyn8 = dynamic_fixed_baseline(&mut dyn_net, 8, calibration, &test_batches);

        // "w/o" sweep: splice unregularized stages once, then per bit width
        // restore float weights, recalibrate the uniform signal scale, and
        // direct-quantize the weights.
        let (switch, _) = insert_signal_stages(
            &mut float_net,
            ActivationRegularizer::new(RegKind::None, 4, 0.0),
            0.0,
            ActivationQuantizer::new(4),
        );
        let maxima = calibrate_stage_maxima(&mut float_net, calibration);
        let global_max = maxima.iter().copied().fold(0.0f32, f32::max).max(1e-6);

        let mut table = Table::new(
            format!(
                "Table 4 — {kind}: signals AND weights quantized, ideal {}, 8-bit dyn-FP {}",
                pct(ideal),
                pct(dyn8)
            ),
            &["Bits", "w/o", "w/", "Recovered acc.", "Acc. drop"],
        );
        for bits in TABLE_BITS {
            restore_weights(&mut float_net, &snapshot);
            let levels = ((1u32 << bits) - 1) as f32;
            let q = ActivationQuantizer::with_scale(bits, levels / global_max);
            visit_signal_stages(&mut float_net, |s| s.set_quantizer(q));
            quantize_network_weights(&mut float_net, bits, WeightQuantMethod::DirectFixedPoint);
            switch.set_enabled(true);
            let without = evaluate(&mut float_net, &test_batches);

            eprintln!("[{kind}] {bits}-bit proposed…");
            let quant = QuantConfig::paper(bits, bits);
            let model =
                train_quant_aware(kind, w.width, &w.settings, &quant, &w.train, &w.test, SEED);
            let with = model.quantized_accuracy;

            table.row(&[
                format!("{bits}-bit"),
                pct(without),
                pct(with),
                pct(with - without),
                pct_delta(with, ideal),
            ]);
        }
        println!("{}", table.render());
    }
    println!("paper Table 4 (MNIST/CIFAR-10): Lenet 8-bit [23] 98.16%, 4-bit w/ 98.14%;");
    println!("Alexnet 8-bit [23] 84.5%, 4-bit w/ 83.05%; Resnet 8-bit [23] 91.75%, 4-bit w/ 90.33%.");
}
