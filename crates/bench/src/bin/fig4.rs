//! Regenerates **Figure 4**: the distribution of first-hidden-layer
//! inter-layer signals after training LeNet under each of the four
//! regularizers (none / l1 / truncated l1 / proposed), `M = 4`.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin fig4 --release
//! ```

use qsnc_bench::{Workload, SEED};
use qsnc_core::{train_quant_aware, QuantConfig};
use qsnc_nn::{Mode, ModelKind};
use qsnc_quant::{ActivationRegularizer, RegKind, WeightQuantMethod};

fn main() {
    let bits = 4;
    let theta = ActivationRegularizer::neuron_convergence(bits).threshold();
    let w = Workload::standard(ModelKind::Lenet);
    let sample = &w.test.batches(256, None)[0];

    let kinds = [
        ("none", RegKind::None, 0.0f32),
        ("l1", RegKind::L1, 1e-5),
        ("truncated l1", RegKind::TruncatedL1, 1e-4),
        ("proposed", RegKind::NeuronConvergence, 1e-4),
    ];

    for (name, kind, lambda) in kinds {
        eprintln!("training LeNet with {name} regularization (λ = {lambda:.0e})…");
        let quant = QuantConfig {
            activation_bits: bits,
            weight_bits: 32, // float weights: the figure is about signals
            lambda,
            alpha: 0.1,
            regularizer: kind,
            weight_method: WeightQuantMethod::Clustered,
            finetune_epochs: 0,
        };
        let mut model =
            train_quant_aware(ModelKind::Lenet, w.width, &w.settings, &quant, &w.train, &w.test, SEED);
        // Histogram the first ReLU's outputs (pre-quantization), as the
        // paper plots the first hidden layer's signals.
        model.switch.set_enabled(false);
        model.net.forward(&sample.images, Mode::Eval);
        let taps = model.net.activation_taps();
        let first = &taps[0];
        let nonzero = 1.0 - first.sparsity();
        let in_range = first.count(|v| v < theta) as f32 / first.len() as f32;
        let hist = first.histogram(0.0, 2.0 * theta, 16);
        let peak = *hist.iter().max().unwrap() as f32;

        println!("\n== {name} (λ = {lambda:.0e}) ==");
        println!(
            "accuracy {:.2}%  |  max signal {:.2}  |  nonzero {:.1}%  |  within [0, {theta}) {:.1}%",
            model.quantized_accuracy * 100.0,
            first.max(),
            nonzero * 100.0,
            in_range * 100.0
        );
        println!("histogram over [0, {:.0}), 16 bins (last bin clamps the tail):", 2.0 * theta);
        for (i, &count) in hist.iter().enumerate() {
            let lo = i as f32 * theta / 8.0;
            let bar_len = ((count as f32 / peak) * 50.0).round() as usize;
            println!("  [{lo:5.2}..) {:>7} |{}", count, "#".repeat(bar_len));
        }
    }
    println!("\nexpected (paper Fig. 4): 'proposed' concentrates mass at zero AND inside");
    println!("[0, 2^(M−1)); 'l1' is sparse but unbounded; 'truncated l1' bounded but dense;");
    println!("'none' is both unbounded and dense.");
}
