//! Regenerates **Figure 4**: the distribution of first-hidden-layer
//! inter-layer signals after training LeNet under each of the four
//! regularizers (none / l1 / truncated l1 / proposed), `M = 4`.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin fig4 --release
//! ```

use qsnc_bench::{Workload, SEED};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::{train_quant_aware, QuantConfig};
use qsnc_nn::{Mode, ModelKind};
use qsnc_quant::{ActivationRegularizer, RegKind, WeightQuantMethod};

fn main() {
    let bits = 4;
    let theta = ActivationRegularizer::neuron_convergence(bits).threshold();
    let w = Workload::standard(ModelKind::Lenet);
    let sample = &w.test.batches(256, None)[0];

    let kinds = [
        ("none", RegKind::None, 0.0f32),
        ("l1", RegKind::L1, 1e-5),
        ("truncated l1", RegKind::TruncatedL1, 1e-4),
        ("proposed", RegKind::NeuronConvergence, 1e-4),
    ];

    let bins = 16usize;
    let mut summary = Table::new(
        format!("Fig. 4 — first-hidden-layer signal statistics (LeNet, M = {bits}, θ = {theta})"),
        &["Regularizer", "λ", "Accuracy", "Max signal", "Nonzero", "Within [0, θ)"],
    );
    let mut histograms: Vec<(&str, Vec<usize>)> = Vec::new();

    for (name, kind, lambda) in kinds {
        eprintln!("training LeNet with {name} regularization (λ = {lambda:.0e})…");
        let quant = QuantConfig {
            activation_bits: bits,
            weight_bits: 32, // float weights: the figure is about signals
            lambda,
            alpha: 0.1,
            regularizer: kind,
            weight_method: WeightQuantMethod::Clustered,
            finetune_epochs: 0,
        };
        let mut model =
            train_quant_aware(ModelKind::Lenet, w.width, &w.settings, &quant, &w.train, &w.test, SEED);
        // Histogram the first ReLU's outputs (pre-quantization), as the
        // paper plots the first hidden layer's signals.
        model.switch.set_enabled(false);
        model.net.forward(&sample.images, Mode::Eval);
        let taps = model.net.activation_taps();
        let first = &taps[0];
        let nonzero = 1.0 - first.sparsity();
        let in_range = first.count(|v| v < theta) as f32 / first.len() as f32;
        summary.row(&[
            name.to_string(),
            format!("{lambda:.0e}"),
            pct(model.quantized_accuracy),
            format!("{:.2}", first.max()),
            format!("{:.1}%", nonzero * 100.0),
            format!("{:.1}%", in_range * 100.0),
        ]);
        histograms.push((name, first.histogram(0.0, 2.0 * theta, bins)));
    }

    // One histogram table: rows are bins, one count+bar column pair per
    // regularizer, each bar normalized to its own peak.
    let header: Vec<String> = std::iter::once("Bin".to_string())
        .chain(histograms.iter().map(|(n, _)| n.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut hist_table = Table::new(
        format!("Fig. 4 — signal histograms over [0, {:.0}), {bins} bins (last bin clamps the tail)", 2.0 * theta),
        &header_refs,
    );
    for i in 0..bins {
        let lo = i as f32 * theta / 8.0;
        let mut row = vec![format!("[{lo:5.2}..)")];
        for (_, hist) in &histograms {
            let peak = *hist.iter().max().unwrap() as f32;
            let bar_len = ((hist[i] as f32 / peak) * 20.0).round() as usize;
            row.push(format!("{:>7} {}", hist[i], "#".repeat(bar_len)));
        }
        hist_table.row(&row);
    }

    let mut report = Report::new("Fig. 4 — inter-layer signal distributions");
    report
        .table(summary)
        .table(hist_table)
        .note("expected (paper Fig. 4): 'proposed' concentrates mass at zero AND inside")
        .note("[0, 2^(M−1)); 'l1' is sparse but unbounded; 'truncated l1' bounded but dense;")
        .note("'none' is both unbounded and dense.");
    report.emit();
}
