//! Regenerates **Table 2**: accuracy after *neuron* (inter-layer signal)
//! quantization, with and without Neuron Convergence. Weights stay fp32.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin table2 --release
//! ```

use qsnc_bench::{
    calibrated_quantizer, recovery_row, splice_calibrated_stages, Workload, RECOVERY_HEADER, SEED,
    TABLE_BITS,
};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::{train_float, train_quant_aware, visit_signal_stages, QuantConfig};
use qsnc_nn::train::evaluate;
use qsnc_nn::ModelKind;

fn main() {
    let mut report = Report::new("Table 2 — neuron quantization (weights fp32)");
    for kind in [ModelKind::Lenet, ModelKind::Alexnet, ModelKind::Resnet] {
        let w = Workload::standard(kind);
        let test_batches = w.test.batches(64, None);
        let calibration = &w.train.batches(128, None)[0];

        eprintln!("[{kind}] training fp32 baseline…");
        let (mut float_net, ideal) =
            train_float(kind, w.width, &w.settings, &w.train, &w.test, SEED);

        // "w/o": splice unregularized stages once, recalibrate per width.
        let (switch, global_max) = splice_calibrated_stages(&mut float_net, calibration);
        switch.set_enabled(true);

        let mut table = Table::new(
            format!("Table 2 — {kind}: neuron quantization (weights fp32), ideal {}", pct(ideal)),
            &RECOVERY_HEADER,
        );
        for bits in TABLE_BITS {
            let q = calibrated_quantizer(bits, global_max);
            visit_signal_stages(&mut float_net, |s| s.set_quantizer(q));
            let without = evaluate(&mut float_net, &test_batches);

            eprintln!("[{kind}] {bits}-bit Neuron Convergence training…");
            let quant = QuantConfig {
                weight_bits: 32, // signals only
                ..QuantConfig::paper(bits, 32)
            };
            let model =
                train_quant_aware(kind, w.width, &w.settings, &quant, &w.train, &w.test, SEED);
            recovery_row(&mut table, bits, without, model.quantized_accuracy, ideal);
        }
        report.table(table);
    }
    report
        .note("paper Table 2 (MNIST/CIFAR-10): e.g. Lenet 3-bit w/o 92.9% → w/ 98.13%;")
        .note("Resnet 3-bit w/o 26.57% → w/ 88.95% (recovery grows as bits shrink).");
    report.emit();
}
