//! Regenerates **Table 2**: accuracy after *neuron* (inter-layer signal)
//! quantization, with and without Neuron Convergence. Weights stay fp32.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin table2 --release
//! ```

use qsnc_bench::{Workload, SEED, TABLE_BITS};
use qsnc_core::report::{pct, pct_delta, Table};
use qsnc_core::{
    calibrate_stage_maxima, train_float, train_quant_aware, visit_signal_stages, QuantConfig,
};
use qsnc_nn::train::evaluate;
use qsnc_nn::ModelKind;
use qsnc_quant::{insert_signal_stages, ActivationQuantizer, ActivationRegularizer, RegKind};

fn main() {
    for kind in [ModelKind::Lenet, ModelKind::Alexnet, ModelKind::Resnet] {
        let w = Workload::standard(kind);
        let test_batches = w.test.batches(64, None);
        let calibration = &w.train.batches(128, None)[0];

        eprintln!("[{kind}] training fp32 baseline…");
        let (mut float_net, ideal) =
            train_float(kind, w.width, &w.settings, &w.train, &w.test, SEED);

        // "w/o": splice unregularized stages once, recalibrate per width.
        let (switch, _) = insert_signal_stages(
            &mut float_net,
            ActivationRegularizer::new(RegKind::None, 4, 0.0),
            0.0,
            ActivationQuantizer::new(4),
        );
        let maxima = calibrate_stage_maxima(&mut float_net, calibration);
        let global_max = maxima.iter().copied().fold(0.0f32, f32::max).max(1e-6);
        switch.set_enabled(true);

        let mut table = Table::new(
            format!("Table 2 — {kind}: neuron quantization (weights fp32), ideal {}", pct(ideal)),
            &["Bits", "w/o", "w/", "Recovered acc.", "Acc. drop"],
        );
        for bits in TABLE_BITS {
            let levels = ((1u32 << bits) - 1) as f32;
            let q = ActivationQuantizer::with_scale(bits, levels / global_max);
            visit_signal_stages(&mut float_net, |s| s.set_quantizer(q));
            let without = evaluate(&mut float_net, &test_batches);

            eprintln!("[{kind}] {bits}-bit Neuron Convergence training…");
            let quant = QuantConfig {
                weight_bits: 32, // signals only
                ..QuantConfig::paper(bits, 32)
            };
            let model =
                train_quant_aware(kind, w.width, &w.settings, &quant, &w.train, &w.test, SEED);
            let with = model.quantized_accuracy;
            table.row(&[
                format!("{bits}-bit"),
                pct(without),
                pct(with),
                pct(with - without),
                pct_delta(with, ideal),
            ]);
        }
        println!("{}", table.render());
    }
    println!("paper Table 2 (MNIST/CIFAR-10): e.g. Lenet 3-bit w/o 92.9% → w/ 98.13%;");
    println!("Resnet 3-bit w/o 26.57% → w/ 88.95% (recovery grows as bits shrink).");
}
