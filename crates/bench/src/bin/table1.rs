//! Regenerates **Table 1**: neural network models and ideal accuracy.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin table1 --release
//! ```

use qsnc_bench::{Workload, SEED};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::train_float;
use qsnc_nn::{LayerDesc, ModelKind};

fn main() {
    let mut report = Report::new("Table 1 — Neural network models and ideal accuracy");
    let mut table = Table::new(
        "Table 1 — Neural network models and ideal accuracy",
        &["Model", "Dataset", "Input", "Conv layers", "FC layers", "Weights", "Ideal acc."],
    );
    for kind in [ModelKind::Lenet, ModelKind::Alexnet, ModelKind::Resnet] {
        let w = Workload::standard(kind);
        eprintln!("training fp32 {kind} (width {})…", w.width);
        let (mut net, acc) =
            train_float(kind, w.width, &w.settings, &w.train, &w.test, SEED);
        let descs = net.synaptic_descriptors();
        let convs: Vec<usize> = descs
            .iter()
            .filter_map(|d| match d {
                LayerDesc::Conv { kernel, .. } => Some(*kernel),
                _ => None,
            })
            .collect();
        let fcs = descs
            .iter()
            .filter(|d| matches!(d, LayerDesc::Linear { .. }))
            .count();
        // Summarize conv kernels as the paper does: "2(5×5)" etc.
        let mut kernel_counts = std::collections::BTreeMap::new();
        for k in convs {
            *kernel_counts.entry(k).or_insert(0usize) += 1;
        }
        let conv_desc = kernel_counts
            .iter()
            .rev()
            .map(|(k, n)| format!("{n}({k}x{k})"))
            .collect::<Vec<_>>()
            .join(", ");
        let [c, h, wd] = kind.input_dims();
        table.row(&[
            kind.to_string(),
            w.dataset_name().to_string(),
            format!("{h}x{wd}x{c}"),
            conv_desc,
            fcs.to_string(),
            format!("{:.1e}", net.weight_count() as f64),
            pct(acc),
        ]);
        let _ = &mut net;
    }
    report.table(table).note(
        "paper (real MNIST/CIFAR-10, full-width nets): Lenet 98.16%, Alexnet 85.35%, Resnet 93.05%",
    );
    report.emit();
}
