//! Regenerates **Figure 1**: (a) spiking computation speed versus neuron
//! precision, and (b) accuracy loss caused by low-precision neurons versus
//! low-precision weights (LeNet, direct quantization, no recovery).
//!
//! ```bash
//! cargo run -p qsnc-bench --bin fig1 --release
//! ```

use qsnc_bench::{
    calibrated_quantizer, restore_weights, snapshot_weights, splice_calibrated_stages, Workload,
    SEED,
};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::{train_float, visit_signal_stages};
use qsnc_memristor::{network_geometry, HwModel};
use qsnc_nn::train::evaluate;
use qsnc_nn::ModelKind;
use qsnc_quant::{quantize_network_weights, WeightQuantMethod};
use qsnc_tensor::TensorRng;

fn main() {
    let mut report = Report::new("Fig. 1 — speed and accuracy vs precision (LeNet)");

    // (a) Computation speed vs neuron precision — pure hardware model.
    let model = HwModel::calibrated();
    let mut rng = TensorRng::seed(0);
    let net = qsnc_nn::models::build_model(ModelKind::Lenet, 1.0, 10, &mut rng);
    let geo = network_geometry(&net.synaptic_descriptors(), 32);
    let mut fa = Table::new(
        "Fig. 1a — computation speed vs neuron precision (LeNet)",
        &["Neuron bits M", "Spike window", "Speed (MHz)", "Relative to 8-bit"],
    );
    let base = model.evaluate(&geo, 8, 4);
    for m in 1..=8u32 {
        let r = model.evaluate(&geo, m, 4);
        fa.row(&[
            m.to_string(),
            (1u32 << m).to_string(),
            format!("{:.2}", r.speed_mhz),
            format!("{:.1}x", r.speed_mhz / base.speed_mhz),
        ]);
    }
    report.table(fa);

    // (b) Accuracy loss: neurons-only vs weights-only direct quantization.
    let w = Workload::standard(ModelKind::Lenet);
    let test_batches = w.test.batches(64, None);
    let calibration = &w.train.batches(128, None)[0];
    eprintln!("training fp32 LeNet…");
    let (mut net, ideal) = train_float(ModelKind::Lenet, w.width, &w.settings, &w.train, &w.test, SEED);
    let snapshot = snapshot_weights(&mut net);

    // Splice stages once for the neuron sweep.
    let (switch, global_max) = splice_calibrated_stages(&mut net, calibration);

    let mut fb = Table::new(
        format!("Fig. 1b — accuracy loss from direct quantization (LeNet, ideal {})", pct(ideal)),
        &["Bits", "Neurons-only acc.", "Neuron loss", "Weights-only acc.", "Weight loss"],
    );
    for bits in (2..=8u32).rev() {
        // Neurons only.
        switch.set_enabled(true);
        let q = calibrated_quantizer(bits, global_max);
        visit_signal_stages(&mut net, |s| s.set_quantizer(q));
        restore_weights(&mut net, &snapshot);
        let neuron_acc = evaluate(&mut net, &test_batches);

        // Weights only.
        switch.set_enabled(false);
        restore_weights(&mut net, &snapshot);
        quantize_network_weights(&mut net, bits, WeightQuantMethod::DirectFixedPoint);
        let weight_acc = evaluate(&mut net, &test_batches);

        fb.row(&[
            bits.to_string(),
            pct(neuron_acc),
            pct(ideal - neuron_acc),
            pct(weight_acc),
            pct(ideal - weight_acc),
        ]);
    }
    restore_weights(&mut net, &snapshot);
    report
        .table(fb)
        .note("paper Fig. 1b: neuron quantization hurts more than weight quantization at")
        .note("the same bit width — check that 'Neuron loss' exceeds 'Weight loss' at low bits.");
    report.emit();
}
