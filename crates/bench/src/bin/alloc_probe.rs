//! Steady-state allocation probe for the integer fast-path pipeline.
//!
//! Compiles the 4-bit LeNet onto the spiking substrate, warms the thread's
//! scratch arena with one inference, then runs many more through
//! [`SpikingNetwork::infer_into`] and reports the scratch-arena traffic:
//! the number of takes and — the property under test — the number of
//! **fresh allocations**, which must be zero in the steady state. Runs
//! pinned to one thread, the same configuration the single-core deployment
//! benchmarks measure.
//!
//! Exit status is non-zero if the steady state allocated, so CI can gate
//! on it directly. With `QSNC_BENCH_JSON` set, appends one JSON line in
//! the same format the criterion stub uses.
//!
//! Usage: `alloc_probe [iterations]` (default 1000).

use std::io::Write as _;

use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_nn::models;
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    WeightQuantMethod,
};
use qsnc_tensor::{init, parallel, scratch, TensorRng};

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);

    let mut rng = TensorRng::seed(0);
    let mut net = models::lenet(0.5, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    let config = DeployConfig::paper(4, 4);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    assert!(snn.has_fast_path(), "4-bit LeNet must compile the integer engine");
    let x = init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);

    let (takes, allocs) = parallel::with_num_threads(1, || {
        let mut out = Vec::new();
        // Warm-up: the first call sizes every scratch buffer and `out`.
        snn.infer_into(&x, &mut out);
        let base_takes = scratch::takes();
        let base_allocs = scratch::fresh_allocations();
        for _ in 0..iters {
            snn.infer_into(&x, &mut out);
        }
        (
            scratch::takes() - base_takes,
            scratch::fresh_allocations() - base_allocs,
        )
    });

    // Batched path: what a warm qsnc-serve worker runs per micro-batch.
    const BATCH: usize = 8;
    let xs = init::uniform([BATCH, 1, 28, 28], 0.0, 1.0, &mut rng);
    let (batch_takes, batch_allocs) = parallel::with_num_threads(1, || {
        let mut out = Vec::new();
        snn.infer_batch_into(&xs, &mut out);
        let base_takes = scratch::takes();
        let base_allocs = scratch::fresh_allocations();
        for _ in 0..iters {
            snn.infer_batch_into(&xs, &mut out);
        }
        (
            scratch::takes() - base_takes,
            scratch::fresh_allocations() - base_allocs,
        )
    });

    println!(
        "steady state: {iters} inferences, {takes} scratch takes, {allocs} fresh allocations"
    );
    println!(
        "steady state (batch {BATCH}): {iters} batches, {batch_takes} scratch takes, \
         {batch_allocs} fresh allocations"
    );
    if let Ok(path) = std::env::var("QSNC_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                f,
                "{{\"name\": \"inference_lenet_4bit/steady_state_fresh_allocs\", \
                 \"iters\": {iters}, \"scratch_takes\": {takes}, \"fresh_allocations\": {allocs}}}"
            );
            let _ = writeln!(
                f,
                "{{\"name\": \"inference_lenet_4bit/steady_state_fresh_allocs_batch{BATCH}\", \
                 \"iters\": {iters}, \"scratch_takes\": {batch_takes}, \
                 \"fresh_allocations\": {batch_allocs}}}"
            );
        }
    }
    if allocs != 0 {
        eprintln!("FAIL: steady-state inference performed {allocs} fresh scratch allocations");
        std::process::exit(1);
    }
    if batch_allocs != 0 {
        eprintln!(
            "FAIL: steady-state batched inference performed {batch_allocs} fresh scratch allocations"
        );
        std::process::exit(1);
    }
}
