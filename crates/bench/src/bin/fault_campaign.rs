//! Fault-rate campaign: what the reliability subsystem buys on faulty
//! crossbars.
//!
//! Sweeps stuck-cell rates (0.1%–5%) over three deployment policies on the
//! **same seeded fault maps** — the fault population of each tile is a pure
//! function of `(seed, layer, tile)`, so the policies compete on identical
//! hardware:
//!
//! - **naive** — program as if the array were perfect,
//! - **write-verify** — program-verify every device, zero-mask
//!   unrecoverable cells,
//! - **remapped** — write-verify plus cost-ranked spare-column remapping.
//!
//! Emits the combined report (tables + degradation stats + telemetry) as
//! `BENCH_pr5.json` by default: telemetry is forced to JSON mode and
//! `QSNC_REPORT_JSON` defaults to `BENCH_pr5.json` when unset.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin fault_campaign --release
//! ```

use qsnc_bench::{Workload, SEED};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::{degradation_table, deploy_to_snc_reliable, train_quant_aware, QuantConfig};
use qsnc_memristor::{FaultRates, ProgramPolicy, ReliabilityConfig};
use qsnc_nn::ModelKind;

const FAULT_RATES: [f32; 5] = [0.001, 0.005, 0.01, 0.02, 0.05];
const MAP_SEED: u64 = 16; // ref. [16]: "Rescuing memristor-based design with high defects"

fn main() {
    // Default to the PR's benchmark artifact unless the caller redirects.
    if std::env::var("QSNC_TELEMETRY").is_err() {
        std::env::set_var("QSNC_TELEMETRY", "json");
        qsnc_telemetry::set_mode(qsnc_telemetry::TelemetryMode::Json);
    }
    if std::env::var("QSNC_REPORT_JSON").is_err() {
        std::env::set_var("QSNC_REPORT_JSON", "BENCH_pr5.json");
    }

    let w = Workload::standard(ModelKind::Lenet);
    let test_batches = w.test.batches(64, None);
    eprintln!("training 4-bit quantization-aware LeNet…");
    let quant = QuantConfig::paper(4, 4);
    let model =
        train_quant_aware(ModelKind::Lenet, w.width, &w.settings, &quant, &w.train, &w.test, SEED);
    let clean = model.quantized_accuracy;

    let mut report = Report::new("Fault campaign — naive vs write-verify vs remapped");
    report.note(format!("clean 4-bit accuracy: {}", pct(clean)));

    let mut sweep = Table::new(
        "Deployment accuracy under seeded stuck-cell faults (4-bit LeNet)",
        &["Stuck rate", "Naive", "Write-verify", "Remapped", "Recovered"],
    );
    let policies = [
        ("naive", ProgramPolicy::Naive),
        ("write_verify", ProgramPolicy::WriteVerify),
        ("remapped", ProgramPolicy::Remap),
    ];
    let mut last_degradation: Option<Table> = None;
    for rate in FAULT_RATES {
        let mut accs = [0.0f32; 3];
        for (slot, (name, policy)) in policies.iter().enumerate() {
            let rel = ReliabilityConfig::faulty(FaultRates::stuck(rate), MAP_SEED, *policy);
            let snn = deploy_to_snc_reliable(&model.net, &quant, rel, None).expect("deploy");
            let acc = snn.evaluate(&test_batches, None);
            accs[slot] = acc;
            eprintln!(
                "rate {:.1}% policy {name}: accuracy {} ({} faulty cells, {} remapped, {} masked)",
                rate * 100.0,
                pct(acc),
                snn.degradation().cells,
                snn.degradation().remapped,
                snn.degradation().masked,
            );
            if *policy == ProgramPolicy::Remap {
                last_degradation = Some(degradation_table(&snn));
            }
        }
        sweep.row(&[
            format!("{:.1}%", rate * 100.0),
            pct(accs[0]),
            pct(accs[1]),
            pct(accs[2]),
            format!("{:+.2}%", (accs[2] - accs[0]) * 100.0),
        ]);
    }
    report.table(sweep);
    if let Some(t) = last_degradation {
        report.table(t);
    }
    report
        .note("all three policies face the identical seeded fault map per rate;")
        .note("'Recovered' is the remapped-minus-naive accuracy delta.")
        .note(format!("fault map master seed: {MAP_SEED}"));
    report.emit();
}
