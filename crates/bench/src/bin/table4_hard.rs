//! Table 4 on the **hard** object task: the paper's regime where the fp32
//! model itself is below ceiling (as CIFAR-10 is), so quantization deltas
//! are measured against a non-trivial baseline.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin table4_hard --release
//! ```

use qsnc_bench::{
    calibrated_quantizer, recovery_row, restore_weights, snapshot_weights,
    splice_calibrated_stages, RECOVERY_HEADER, SEED, TABLE_BITS,
};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::{
    dynamic_fixed_baseline, train_float, train_quant_aware, visit_signal_stages, QuantConfig,
    TrainSettings,
};
use qsnc_data::synth_objects_hard;
use qsnc_nn::train::evaluate;
use qsnc_nn::ModelKind;
use qsnc_quant::{quantize_network_weights, WeightQuantMethod};
use qsnc_tensor::TensorRng;

fn main() {
    let mut rng = TensorRng::seed(SEED);
    let (train, test) = synth_objects_hard(5000, &mut rng).split(0.8);
    // lr 0.01: at 0.02 the width-0.25 AlexNet occasionally collapses to
    // dead ReLUs on this noisier task (observed at seed 2018).
    let settings = TrainSettings {
        epochs: 5,
        lr: 0.01,
        ..TrainSettings::default()
    };
    let width = 0.25;
    let kind = ModelKind::Alexnet;
    let test_batches = test.batches(64, None);
    let calibration = &train.batches(128, None)[0];

    eprintln!("[{kind}/hard] training fp32 baseline…");
    let (mut float_net, ideal) = train_float(kind, width, &settings, &train, &test, SEED);
    let snapshot = snapshot_weights(&mut float_net);

    eprintln!("[{kind}/hard] 8-bit dynamic fixed-point baseline…");
    let (mut dyn_net, _) = train_float(kind, width, &settings, &train, &test, SEED);
    let dyn8 = dynamic_fixed_baseline(&mut dyn_net, 8, calibration, &test_batches);

    let (switch, global_max) = splice_calibrated_stages(&mut float_net, calibration);

    let mut report = Report::new("Table 4 (hard objects) — signals AND weights quantized");
    let mut table = Table::new(
        format!(
            "Table 4 (hard objects) — {kind}: ideal {}, 8-bit dyn-FP {}",
            pct(ideal),
            pct(dyn8)
        ),
        &RECOVERY_HEADER,
    );
    for bits in TABLE_BITS {
        restore_weights(&mut float_net, &snapshot);
        let q = calibrated_quantizer(bits, global_max);
        visit_signal_stages(&mut float_net, |s| s.set_quantizer(q));
        quantize_network_weights(&mut float_net, bits, WeightQuantMethod::DirectFixedPoint);
        switch.set_enabled(true);
        let without = evaluate(&mut float_net, &test_batches);

        eprintln!("[{kind}/hard] {bits}-bit proposed…");
        let quant = QuantConfig::paper(bits, bits);
        let model = train_quant_aware(kind, width, &settings, &quant, &train, &test, SEED);
        recovery_row(&mut table, bits, without, model.quantized_accuracy, ideal);
    }
    report
        .table(table)
        .note("compare the paper's CIFAR-10 AlexNet column: ideal 85.35%, 8-bit [23] 84.5%,")
        .note("5/4/3-bit w/o 81.8/76.16/69.7%, w/ 84.47/83.05/81.53%.");
    report.emit();
}
