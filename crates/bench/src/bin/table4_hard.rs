//! Table 4 on the **hard** object task: the paper's regime where the fp32
//! model itself is below ceiling (as CIFAR-10 is), so quantization deltas
//! are measured against a non-trivial baseline.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin table4_hard --release
//! ```

use qsnc_bench::{restore_weights, snapshot_weights, SEED, TABLE_BITS};
use qsnc_core::report::{pct, pct_delta, Table};
use qsnc_core::{
    calibrate_stage_maxima, dynamic_fixed_baseline, train_float, train_quant_aware,
    visit_signal_stages, QuantConfig, TrainSettings,
};
use qsnc_data::synth_objects_hard;
use qsnc_nn::train::evaluate;
use qsnc_nn::ModelKind;
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    RegKind, WeightQuantMethod,
};
use qsnc_tensor::TensorRng;

fn main() {
    let mut rng = TensorRng::seed(SEED);
    let (train, test) = synth_objects_hard(5000, &mut rng).split(0.8);
    // lr 0.01: at 0.02 the width-0.25 AlexNet occasionally collapses to
    // dead ReLUs on this noisier task (observed at seed 2018).
    let settings = TrainSettings {
        epochs: 5,
        lr: 0.01,
        ..TrainSettings::default()
    };
    let width = 0.25;
    let kind = ModelKind::Alexnet;
    let test_batches = test.batches(64, None);
    let calibration = &train.batches(128, None)[0];

    eprintln!("[{kind}/hard] training fp32 baseline…");
    let (mut float_net, ideal) = train_float(kind, width, &settings, &train, &test, SEED);
    let snapshot = snapshot_weights(&mut float_net);

    eprintln!("[{kind}/hard] 8-bit dynamic fixed-point baseline…");
    let (mut dyn_net, _) = train_float(kind, width, &settings, &train, &test, SEED);
    let dyn8 = dynamic_fixed_baseline(&mut dyn_net, 8, calibration, &test_batches);

    let (switch, _) = insert_signal_stages(
        &mut float_net,
        ActivationRegularizer::new(RegKind::None, 4, 0.0),
        0.0,
        ActivationQuantizer::new(4),
    );
    let maxima = calibrate_stage_maxima(&mut float_net, calibration);
    let global_max = maxima.iter().copied().fold(0.0f32, f32::max).max(1e-6);

    let mut table = Table::new(
        format!(
            "Table 4 (hard objects) — {kind}: ideal {}, 8-bit dyn-FP {}",
            pct(ideal),
            pct(dyn8)
        ),
        &["Bits", "w/o", "w/", "Recovered acc.", "Acc. drop"],
    );
    for bits in TABLE_BITS {
        restore_weights(&mut float_net, &snapshot);
        let levels = ((1u32 << bits) - 1) as f32;
        let q = ActivationQuantizer::with_scale(bits, levels / global_max);
        visit_signal_stages(&mut float_net, |s| s.set_quantizer(q));
        quantize_network_weights(&mut float_net, bits, WeightQuantMethod::DirectFixedPoint);
        switch.set_enabled(true);
        let without = evaluate(&mut float_net, &test_batches);

        eprintln!("[{kind}/hard] {bits}-bit proposed…");
        let quant = QuantConfig::paper(bits, bits);
        let model = {
            // train_quant_aware builds its own dataset split? No — pass ours.
            train_quant_aware(kind, width, &settings, &quant, &train, &test, SEED)
        };
        let with = model.quantized_accuracy;
        table.row(&[
            format!("{bits}-bit"),
            pct(without),
            pct(with),
            pct(with - without),
            pct_delta(with, ideal),
        ]);
    }
    println!("{}", table.render());
    println!("compare the paper's CIFAR-10 AlexNet column: ideal 85.35%, 8-bit [23] 84.5%,");
    println!("5/4/3-bit w/o 81.8/76.16/69.7%, w/ 84.47/83.05/81.53%.");
}
