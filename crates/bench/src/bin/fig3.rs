//! Regenerates **Figure 3**: the shapes of the four activation
//! regularizers (none, l1, truncated l1, and the proposed Neuron
//! Convergence) at `M = 2` bits.
//!
//! Prints the curves as a CSV series plus a coarse ASCII plot.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin fig3 --release
//! ```

use qsnc_quant::{ActivationRegularizer, RegKind};

fn main() {
    let bits = 2; // as in the paper's figure
    let kinds = [
        ("none", RegKind::None),
        ("l1", RegKind::L1),
        ("truncated_l1", RegKind::TruncatedL1),
        ("proposed", RegKind::NeuronConvergence),
    ];
    let regs: Vec<(&str, ActivationRegularizer)> = kinds
        .iter()
        .map(|&(name, kind)| (name, ActivationRegularizer::new(kind, bits, 0.1)))
        .collect();

    // CSV for plotting.
    println!("# Fig. 3 — rg(o) for M = {bits} (threshold = {})", regs[0].1.threshold());
    println!("o,{}", kinds.map(|(n, _)| n).join(","));
    let samples: Vec<f32> = (-40..=40).map(|i| i as f32 * 0.1).collect();
    for &o in &samples {
        let row: Vec<String> = regs.iter().map(|(_, r)| format!("{:.4}", r.value(o))).collect();
        println!("{o:.1},{}", row.join(","));
    }

    // Coarse ASCII rendering of the positive half-axis.
    println!("\n# ASCII sketch (o in [0, 4], column height ∝ rg(o))");
    for (name, reg) in &regs {
        let bar: String = (0..=40)
            .map(|i| {
                let o = i as f32 * 0.1;
                let v = reg.value(o);
                match v {
                    v if v <= 0.0 => '_',
                    v if v < 0.2 => '.',
                    v if v < 0.5 => ':',
                    v if v < 1.0 => '+',
                    v if v < 2.0 => '*',
                    _ => '#',
                }
            })
            .collect();
        println!("{name:>13} |{bar}|");
    }
    println!("\nexpected: 'proposed' rises gently (α·|o|) inside |o| < 2^(M−1) = 2 and");
    println!("steeply outside — sparsity AND range-fixing; truncated_l1 is flat inside.");
}
