//! Regenerates **Figure 3**: the shapes of the four activation
//! regularizers (none, l1, truncated l1, and the proposed Neuron
//! Convergence) at `M = 2` bits.
//!
//! Emits the sampled curves as a table (one row per sample point, CSV-able
//! via `Table::to_csv`) plus a coarse ASCII sketch.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin fig3 --release
//! ```

use qsnc_core::report::{Report, Table};
use qsnc_quant::{ActivationRegularizer, RegKind};

fn main() {
    let bits = 2; // as in the paper's figure
    let kinds = [
        ("none", RegKind::None),
        ("l1", RegKind::L1),
        ("truncated_l1", RegKind::TruncatedL1),
        ("proposed", RegKind::NeuronConvergence),
    ];
    let regs: Vec<(&str, ActivationRegularizer)> = kinds
        .iter()
        .map(|&(name, kind)| (name, ActivationRegularizer::new(kind, bits, 0.1)))
        .collect();

    let mut report = Report::new("Fig. 3 — activation regularizer shapes");

    // Sampled curves, one row per o.
    let header: Vec<&str> = std::iter::once("o")
        .chain(kinds.iter().map(|&(n, _)| n))
        .collect();
    let mut curves = Table::new(
        format!(
            "Fig. 3 — rg(o) for M = {bits} (threshold = {})",
            regs[0].1.threshold()
        ),
        &header,
    );
    let samples: Vec<f32> = (-40..=40).map(|i| i as f32 * 0.1).collect();
    for &o in &samples {
        let mut row = vec![format!("{o:.1}")];
        row.extend(regs.iter().map(|(_, r)| format!("{:.4}", r.value(o))));
        curves.row(&row);
    }
    report.table(curves);

    // Coarse ASCII rendering of the positive half-axis.
    let mut sketch = Table::new(
        "Fig. 3 — ASCII sketch (o in [0, 4], column height ∝ rg(o))",
        &["Regularizer", "rg(o) profile"],
    );
    for (name, reg) in &regs {
        let bar: String = (0..=40)
            .map(|i| {
                let o = i as f32 * 0.1;
                let v = reg.value(o);
                match v {
                    v if v <= 0.0 => '_',
                    v if v < 0.2 => '.',
                    v if v < 0.5 => ':',
                    v if v < 1.0 => '+',
                    v if v < 2.0 => '*',
                    _ => '#',
                }
            })
            .collect();
        sketch.row(&[name.to_string(), format!("|{bar}|")]);
    }
    report
        .table(sketch)
        .note("expected: 'proposed' rises gently (α·|o|) inside |o| < 2^(M−1) = 2 and")
        .note("steeply outside — sparsity AND range-fixing; truncated_l1 is flat inside.");
    report.emit();
}
