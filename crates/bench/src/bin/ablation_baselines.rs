//! Extension ablation: Weight Clustering versus alternative weight grids.
//!
//! Compares the paper's linear-grid clustering (Eq. 6) against the two
//! baselines it discusses: blind fixed-point rounding and the
//! power-of-two ("multiplier-free") grid of Tann et al. (ref. \[24\]), plus
//! per-layer sensitivity analysis showing where the error bites.
//!
//! ```bash
//! cargo run -p qsnc-bench --bin ablation_baselines --release
//! ```

use qsnc_bench::{restore_weights, snapshot_weights, Workload, SEED};
use qsnc_core::report::{pct, Report, Table};
use qsnc_core::train_float;
use qsnc_nn::train::evaluate;
use qsnc_nn::ModelKind;
use qsnc_quant::{
    quantize_network_power_of_two, quantize_network_weights, weight_sensitivity,
    WeightQuantMethod,
};

fn main() {
    let w = Workload::standard(ModelKind::Lenet);
    let test_batches = w.test.batches(64, None);
    eprintln!("training fp32 LeNet…");
    let (mut net, ideal) = train_float(ModelKind::Lenet, w.width, &w.settings, &w.train, &w.test, SEED);
    let snapshot = snapshot_weights(&mut net);

    // Grid comparison across bit widths.
    let mut grids = Table::new(
        format!("Weight grid comparison (LeNet, signals fp32, ideal {})", pct(ideal)),
        &["Bits", "Direct fixed-point", "Power-of-two [24]", "Clustered (Eq. 6)"],
    );
    for bits in [5u32, 4, 3, 2] {
        restore_weights(&mut net, &snapshot);
        quantize_network_weights(&mut net, bits, WeightQuantMethod::DirectFixedPoint);
        let direct = evaluate(&mut net, &test_batches);

        restore_weights(&mut net, &snapshot);
        quantize_network_power_of_two(&mut net, bits);
        let p2 = evaluate(&mut net, &test_batches);

        restore_weights(&mut net, &snapshot);
        quantize_network_weights(&mut net, bits, WeightQuantMethod::Clustered);
        let clustered = evaluate(&mut net, &test_batches);

        grids.row(&[format!("{bits}-bit"), pct(direct), pct(p2), pct(clustered)]);
    }
    restore_weights(&mut net, &snapshot);

    // Per-layer sensitivity at 2 bits (where differences are visible).
    let (sens, baseline) =
        weight_sensitivity(&mut net, 2, WeightQuantMethod::DirectFixedPoint, &test_batches);
    let mut table = Table::new(
        format!("Per-layer sensitivity to 2-bit direct weights (baseline {})", pct(baseline)),
        &["Layer", "Weights", "Quant MSE", "Accuracy", "Drop"],
    );
    for s in &sens {
        table.row(&[
            s.name.clone(),
            s.count.to_string(),
            format!("{:.2e}", s.mse),
            pct(s.accuracy),
            pct(s.drop),
        ]);
    }

    let mut report = Report::new("Ablation — weight grids and per-layer sensitivity");
    report
        .table(grids)
        .table(table)
        .note("expected: the linear clustered grid dominates both baselines at every bit")
        .note("width (power-of-two wastes resolution near the range edge — the paper's")
        .note("argument for linear conductance levels), and early conv layers are the most")
        .note("sensitive (error propagates, Eq. 4/5).");
    report.emit();
}
