//! Shared experiment harness for the table/figure generator binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library fixes the common
//! workload definitions — dataset sizes, model widths, training settings —
//! so the binaries agree with each other and with EXPERIMENTS.md.

#![warn(missing_docs)]

use qsnc_core::report::{pct, pct_delta, Table};
use qsnc_core::{calibrate_stage_maxima, TrainSettings};
use qsnc_data::{synth_digits, synth_objects, Dataset};
use qsnc_nn::{Batch, ModelKind, Sequential};
use qsnc_quant::{
    insert_signal_stages, ActivationQuantizer, ActivationRegularizer, QuantSwitch, RegKind,
};
use qsnc_tensor::{Tensor, TensorRng};

/// Master seed for all experiment binaries.
pub const SEED: u64 = 2018;

/// One experimental workload: a model kind bound to its dataset and
/// training settings.
pub struct Workload {
    /// Which of the paper's networks.
    pub kind: ModelKind,
    /// Width multiplier for CPU-scale training.
    pub width: f32,
    /// Training split.
    pub train: Dataset,
    /// Held-out split.
    pub test: Dataset,
    /// Training hyper-parameters.
    pub settings: TrainSettings,
}

impl Workload {
    /// The standard workload for a model kind: LeNet trains on the digit
    /// task (MNIST stand-in); AlexNet and ResNet train on the object task
    /// (CIFAR stand-in).
    pub fn standard(kind: ModelKind) -> Self {
        let mut rng = TensorRng::seed(SEED);
        match kind {
            ModelKind::Lenet => {
                let (train, test) = synth_digits(5000, &mut rng).split(0.8);
                Workload {
                    kind,
                    width: 0.5,
                    train,
                    test,
                    settings: TrainSettings {
                        epochs: 5,
                        ..TrainSettings::default()
                    },
                }
            }
            ModelKind::Alexnet => {
                let (train, test) = synth_objects(4000, &mut rng).split(0.8);
                Workload {
                    kind,
                    width: 0.25,
                    train,
                    test,
                    settings: TrainSettings {
                        epochs: 4,
                        lr: 0.02,
                        ..TrainSettings::default()
                    },
                }
            }
            ModelKind::Resnet => {
                let (train, test) = synth_objects(4000, &mut rng).split(0.8);
                Workload {
                    kind,
                    width: 0.25,
                    train,
                    test,
                    settings: TrainSettings {
                        epochs: 4,
                        lr: 0.02,
                        ..TrainSettings::default()
                    },
                }
            }
        }
    }

    /// The dataset name used in reports.
    pub fn dataset_name(&self) -> &'static str {
        match self.kind {
            ModelKind::Lenet => "SynthDigits (MNIST stand-in)",
            _ => "SynthObjects (CIFAR-10 stand-in)",
        }
    }
}

/// The bit widths every accuracy table sweeps, as in the paper.
pub const TABLE_BITS: [u32; 3] = [5, 4, 3];

/// Deep-copies every weight tensor (used to restore a float-trained model
/// between destructive quantization passes).
pub fn snapshot_weights(net: &mut Sequential) -> Vec<Tensor> {
    net.params()
        .iter()
        .filter(|p| p.is_weight)
        .map(|p| p.value.clone())
        .collect()
}

/// Restores weights captured by [`snapshot_weights`].
///
/// # Panics
///
/// Panics if the snapshot does not match the network's weight tensors.
pub fn restore_weights(net: &mut Sequential, snapshot: &[Tensor]) {
    let mut it = snapshot.iter();
    for p in net.params() {
        if p.is_weight {
            let saved = it.next().expect("snapshot too short");
            assert_eq!(saved.shape(), p.value.shape(), "snapshot shape mismatch");
            *p.value = saved.clone();
        }
    }
    assert!(it.next().is_none(), "snapshot too long");
}

/// Splices unregularized signal stages into a float-trained network and
/// calibrates one global signal maximum from a batch — the shared setup of
/// every "w/o" (direct signal quantization) sweep in Tables 2/4 and Fig. 1b.
///
/// Stages start disabled; flip the returned [`QuantSwitch`] on and install
/// a [`calibrated_quantizer`] per bit width.
pub fn splice_calibrated_stages(net: &mut Sequential, calibration: &Batch) -> (QuantSwitch, f32) {
    let (switch, _) = insert_signal_stages(
        net,
        ActivationRegularizer::new(RegKind::None, 4, 0.0),
        0.0,
        ActivationQuantizer::new(4),
    );
    let maxima = calibrate_stage_maxima(net, calibration);
    let global_max = maxima.iter().copied().fold(0.0f32, f32::max).max(1e-6);
    (switch, global_max)
}

/// A direct-quantization quantizer whose `2^bits − 1` levels cover
/// `[0, global_max]` uniformly.
pub fn calibrated_quantizer(bits: u32, global_max: f32) -> ActivationQuantizer {
    let levels = ((1u32 << bits) - 1) as f32;
    ActivationQuantizer::with_scale(bits, levels / global_max)
}

/// Column headers shared by the paper's recovery tables (Tables 2–4).
pub const RECOVERY_HEADER: [&str; 5] = ["Bits", "w/o", "w/", "Recovered acc.", "Acc. drop"];

/// Appends one `[Bits, w/o, w/, Recovered acc., Acc. drop]` row in the
/// shared format of [`RECOVERY_HEADER`].
pub fn recovery_row(table: &mut Table, bits: u32, without: f32, with: f32, ideal: f32) {
    table.row(&[
        format!("{bits}-bit"),
        pct(without),
        pct(with),
        pct(with - without),
        pct_delta(with, ideal),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        let w = Workload::standard(ModelKind::Lenet);
        assert_eq!(w.train.example_dims(), [1, 28, 28]);
        let w = Workload::standard(ModelKind::Alexnet);
        assert_eq!(w.train.example_dims(), [3, 32, 32]);
    }

    #[test]
    fn recovery_row_matches_shared_format() {
        let mut t = Table::new("demo", &RECOVERY_HEADER);
        recovery_row(&mut t, 4, 0.90, 0.95, 0.96);
        assert_eq!(
            t.rows()[0],
            vec!["4-bit", "90.00%", "95.00%", "5.00%", "-1.00%"]
        );
    }

    #[test]
    fn calibrated_quantizer_tops_out_at_global_max() {
        let q = calibrated_quantizer(4, 3.0);
        // 15 levels spread over [0, 3]: the top code maps back to 3.0.
        assert!((15.0 / q.scale() - 3.0).abs() < 1e-5);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut rng = TensorRng::seed(0);
        let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
        let snap = snapshot_weights(&mut net);
        // Perturb all weights.
        for p in net.params() {
            if p.is_weight {
                p.value.map_inplace(|x| x + 1.0);
            }
        }
        restore_weights(&mut net, &snap);
        let now = snapshot_weights(&mut net);
        assert_eq!(snap, now);
    }
}
