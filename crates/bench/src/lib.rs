//! Shared experiment harness for the table/figure generator binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library fixes the common
//! workload definitions — dataset sizes, model widths, training settings —
//! so the binaries agree with each other and with EXPERIMENTS.md.

use qsnc_core::TrainSettings;
use qsnc_data::{synth_digits, synth_objects, Dataset};
use qsnc_nn::{ModelKind, Sequential};
use qsnc_tensor::{Tensor, TensorRng};

/// Master seed for all experiment binaries.
pub const SEED: u64 = 2018;

/// One experimental workload: a model kind bound to its dataset and
/// training settings.
pub struct Workload {
    /// Which of the paper's networks.
    pub kind: ModelKind,
    /// Width multiplier for CPU-scale training.
    pub width: f32,
    /// Training split.
    pub train: Dataset,
    /// Held-out split.
    pub test: Dataset,
    /// Training hyper-parameters.
    pub settings: TrainSettings,
}

impl Workload {
    /// The standard workload for a model kind: LeNet trains on the digit
    /// task (MNIST stand-in); AlexNet and ResNet train on the object task
    /// (CIFAR stand-in).
    pub fn standard(kind: ModelKind) -> Self {
        let mut rng = TensorRng::seed(SEED);
        match kind {
            ModelKind::Lenet => {
                let (train, test) = synth_digits(5000, &mut rng).split(0.8);
                Workload {
                    kind,
                    width: 0.5,
                    train,
                    test,
                    settings: TrainSettings {
                        epochs: 5,
                        ..TrainSettings::default()
                    },
                }
            }
            ModelKind::Alexnet => {
                let (train, test) = synth_objects(4000, &mut rng).split(0.8);
                Workload {
                    kind,
                    width: 0.25,
                    train,
                    test,
                    settings: TrainSettings {
                        epochs: 4,
                        lr: 0.02,
                        ..TrainSettings::default()
                    },
                }
            }
            ModelKind::Resnet => {
                let (train, test) = synth_objects(4000, &mut rng).split(0.8);
                Workload {
                    kind,
                    width: 0.25,
                    train,
                    test,
                    settings: TrainSettings {
                        epochs: 4,
                        lr: 0.02,
                        ..TrainSettings::default()
                    },
                }
            }
        }
    }

    /// The dataset name used in reports.
    pub fn dataset_name(&self) -> &'static str {
        match self.kind {
            ModelKind::Lenet => "SynthDigits (MNIST stand-in)",
            _ => "SynthObjects (CIFAR-10 stand-in)",
        }
    }
}

/// The bit widths every accuracy table sweeps, as in the paper.
pub const TABLE_BITS: [u32; 3] = [5, 4, 3];

/// Deep-copies every weight tensor (used to restore a float-trained model
/// between destructive quantization passes).
pub fn snapshot_weights(net: &mut Sequential) -> Vec<Tensor> {
    net.params()
        .iter()
        .filter(|p| p.is_weight)
        .map(|p| p.value.clone())
        .collect()
}

/// Restores weights captured by [`snapshot_weights`].
///
/// # Panics
///
/// Panics if the snapshot does not match the network's weight tensors.
pub fn restore_weights(net: &mut Sequential, snapshot: &[Tensor]) {
    let mut it = snapshot.iter();
    for p in net.params() {
        if p.is_weight {
            let saved = it.next().expect("snapshot too short");
            assert_eq!(saved.shape(), p.value.shape(), "snapshot shape mismatch");
            *p.value = saved.clone();
        }
    }
    assert!(it.next().is_none(), "snapshot too long");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        let w = Workload::standard(ModelKind::Lenet);
        assert_eq!(w.train.example_dims(), [1, 28, 28]);
        let w = Workload::standard(ModelKind::Alexnet);
        assert_eq!(w.train.example_dims(), [3, 32, 32]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut rng = TensorRng::seed(0);
        let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
        let snap = snapshot_weights(&mut net);
        // Perturb all weights.
        for p in net.params() {
            if p.is_weight {
                p.value.map_inplace(|x| x + 1.0);
            }
        }
        restore_weights(&mut net, &snap);
        let now = snapshot_weights(&mut net);
        assert_eq!(snap, now);
    }
}
