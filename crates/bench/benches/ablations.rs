//! Ablation benches for the design choices called out in DESIGN.md:
//! crossbar tile size, blocked vs naive GEMM, and im2col vs direct
//! convolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsnc_memristor::{DeviceConfig, TiledMatrix};
use qsnc_tensor::{conv2d, conv2d_direct, init, matmul, matmul_naive, Conv2dSpec, TensorRng};

fn bench_tile_size_ablation(c: &mut Criterion) {
    // The paper fixes t = 32; how does the choice affect simulated MAC
    // throughput for a LeNet-fc1-shaped matrix?
    let mut group = c.benchmark_group("tile_size_400x84");
    let (in_dim, out_dim) = (400usize, 84usize);
    let mut rng = TensorRng::seed(0);
    let codes: Vec<i32> = (0..in_dim * out_dim).map(|_| rng.index(17) as i32 - 8).collect();
    let x: Vec<f32> = (0..in_dim).map(|_| rng.index(16) as f32).collect();
    for &t in &[8usize, 16, 32, 64, 128] {
        let tm = TiledMatrix::from_codes(&codes, in_dim, out_dim, t, DeviceConfig::paper(4), None);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| tm.matvec_code_units(std::hint::black_box(&x), None))
        });
    }
    group.finish();
}

fn bench_gemm_blocked_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_128");
    let mut rng = TensorRng::seed(1);
    let a = init::uniform([128, 128], -1.0, 1.0, &mut rng);
    let b_m = init::uniform([128, 128], -1.0, 1.0, &mut rng);
    group.bench_function("blocked", |b| {
        b.iter(|| matmul(std::hint::black_box(&a), std::hint::black_box(&b_m)))
    });
    group.bench_function("naive", |b| {
        b.iter(|| matmul_naive(std::hint::black_box(&a), std::hint::black_box(&b_m)))
    });
    group.finish();
}

fn bench_conv_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_16x16x8_to_16");
    let mut rng = TensorRng::seed(2);
    let x = init::uniform([4, 8, 16, 16], -1.0, 1.0, &mut rng);
    let w = init::he_normal([16, 8, 3, 3], 72, &mut rng);
    let spec = Conv2dSpec::new(3, 1, 1);
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| conv2d(std::hint::black_box(&x), &w, None, spec))
    });
    group.bench_function("direct", |b| {
        b.iter(|| conv2d_direct(std::hint::black_box(&x), &w, None, spec))
    });
    group.finish();
}

fn bench_sparse_input_skipping(c: &mut Criterion) {
    // The crossbar skips silent wordlines (event-driven). Neuron
    // Convergence makes signals sparse — measure the payoff.
    let mut group = c.benchmark_group("crossbar_sparsity");
    let (in_dim, out_dim) = (512usize, 128usize);
    let mut rng = TensorRng::seed(3);
    let codes: Vec<i32> = (0..in_dim * out_dim).map(|_| rng.index(17) as i32 - 8).collect();
    let tm = TiledMatrix::from_codes(&codes, in_dim, out_dim, 32, DeviceConfig::paper(4), None);
    for &density in &[1.0f32, 0.5, 0.25, 0.1] {
        let x: Vec<f32> = (0..in_dim)
            .map(|_| {
                if rng.chance(density) {
                    rng.index(16) as f32
                } else {
                    0.0
                }
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("density_{density}")),
            &density,
            |b, _| b.iter(|| tm.matvec_code_units(std::hint::black_box(&x), None)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tile_size_ablation,
    bench_gemm_blocked_vs_naive,
    bench_conv_lowering,
    bench_sparse_input_skipping
);
criterion_main!(benches);
