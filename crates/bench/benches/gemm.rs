//! GEMM microbenchmarks: serial vs parallel row-banded execution, and the
//! Dense vs SkipZeros inner kernels on dense and mostly-zero left operands.
//!
//! These measurements justify the `GemmKernel::Auto` heuristic (sample the
//! left operand, skip zero terms only when they are common) and report the
//! speedup of the thread-parallel path over the single-thread oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use qsnc_tensor::{
    gemm, gemm_serial, igemm, igemm_wx, matmul, matmul_serial, parallel, set_gemm_kernel,
    GemmKernel, PackedCodes, SimdLevel, Tensor,
};
use rand::{Rng, SeedableRng};

/// `[rows, cols]` matrix with uniform entries; every `zero_every`-th entry is
/// exactly zero (0 disables), modelling quantized ReLU activations.
fn mat(rows: usize, cols: usize, seed: u64, zero_every: usize) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|i| {
            if zero_every > 0 && i % zero_every == 0 {
                0.0
            } else {
                rng.gen_range(-1.0f32..1.0)
            }
        })
        .collect();
    Tensor::from_vec(data, [rows, cols])
}

/// Serial oracle vs thread-parallel GEMM on a square dense product.
fn bench_serial_vs_parallel(c: &mut Criterion) {
    let n = 256;
    let a = mat(n, n, 10, 0);
    let b = mat(n, n, 11, 0);
    let mut group = c.benchmark_group("gemm_256");
    group.bench_function("serial", |bch| {
        bch.iter(|| matmul_serial(std::hint::black_box(&a), std::hint::black_box(&b)))
    });
    group.bench_function("parallel", |bch| {
        bch.iter(|| matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
    });
    group.finish();
}

/// Dense vs SkipZeros kernels on a dense left operand: measures the cost of
/// the skip branch when it never fires.
fn bench_kernels_dense_input(c: &mut Criterion) {
    let n = 192;
    let a = mat(n, n, 20, 0);
    let b = mat(n, n, 21, 0);
    let mut out = vec![0.0f32; n * n];
    let mut group = c.benchmark_group("gemm_kernel_dense_input");
    for (label, kernel) in [("dense", GemmKernel::Dense), ("skipzeros", GemmKernel::SkipZeros)] {
        group.bench_function(label, |bch| {
            set_gemm_kernel(kernel);
            bch.iter(|| {
                out.fill(0.0);
                gemm_serial(n, n, n, a.as_slice(), b.as_slice(), &mut out);
            })
        });
    }
    group.finish();
    set_gemm_kernel(GemmKernel::Auto);
}

/// Dense vs SkipZeros kernels on a ~90%-zero left operand (quantized ReLU
/// activations): measures the payoff of skipping zero terms.
fn bench_kernels_sparse_input(c: &mut Criterion) {
    let n = 192;
    let mut rng = rand::rngs::StdRng::seed_from_u64(30);
    let data = (0..n * n)
        .map(|_| {
            if rng.gen_range(0.0f32..1.0) < 0.9 {
                0.0
            } else {
                rng.gen_range(-1.0f32..1.0)
            }
        })
        .collect();
    let a = Tensor::from_vec(data, [n, n]);
    let b = mat(n, n, 31, 0);
    let mut out = vec![0.0f32; n * n];
    let mut group = c.benchmark_group("gemm_kernel_sparse90_input");
    for (label, kernel) in [("dense", GemmKernel::Dense), ("skipzeros", GemmKernel::SkipZeros)] {
        group.bench_function(label, |bch| {
            set_gemm_kernel(kernel);
            bch.iter(|| {
                out.fill(0.0);
                gemm_serial(n, n, n, a.as_slice(), b.as_slice(), &mut out);
            })
        });
    }
    group.finish();
    set_gemm_kernel(GemmKernel::Auto);
}

/// Parallel speedup as the thread count grows, on a conv-shaped product
/// (`[f, c·k·k] × [c·k·k, oh·ow]`).
///
/// The t1 ≥ t2 ≥ t4 expectation only holds when the host actually has
/// the cores — on a single-core runner extra workers are pure
/// coordination overhead — so a `meta` row records the detected core
/// count next to the timings and CI gates its non-increasing assertion
/// on it.
fn bench_thread_scaling(c: &mut Criterion) {
    let (m, k, n) = (64, 288, 1024);
    let a = mat(m, k, 40, 0);
    let b = mat(k, n, 41, 0);
    let mut out = vec![0.0f32; m * n];
    let mut group = c.benchmark_group("gemm_conv_shape_threads");
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("t{threads}"), |bch| {
            bch.iter(|| {
                parallel::with_num_threads(threads, || {
                    out.fill(0.0);
                    gemm(m, k, n, a.as_slice(), b.as_slice(), &mut out);
                })
            })
        });
    }
    group.finish();
    if let Ok(path) = std::env::var("QSNC_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            use std::io::Write as _;
            let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
            let _ = writeln!(
                f,
                "{{\"name\": \"gemm_conv_shape_threads/meta\", \"cores\": {cores}}}"
            );
        }
    }
}

/// Integer fast-path GEMM (packed i8 codes × i32 spike counts) against the
/// float GEMM on the same conv-shaped product, all pinned to one thread —
/// the configuration the deployment benchmarks run in. `int_wx` is the
/// weights-times-columns orientation the inference engine uses (inner loop
/// streams pixels); `int_rows` is the row-major orientation, kept to show
/// why the engine does not use it for conv.
fn bench_igemm_vs_float(c: &mut Criterion) {
    // LeNet conv-like shape: W[f, c·k·k] × cols[c·k·k, oh·ow].
    let (out, k, pix) = (16usize, 200usize, 576usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(50);
    let cols: Vec<i32> = (0..k * pix).map(|_| rng.gen_range(0..16)).collect();
    let codes: Vec<i32> = (0..out * k).map(|_| rng.gen_range(-8..=8)).collect();
    let packed = PackedCodes::try_pack(&codes, out, k).expect("codes fit i8");
    let cols_f: Vec<f32> = cols.iter().map(|&v| v as f32).collect();
    let codes_f: Vec<f32> = codes.iter().map(|&v| v as f32).collect();
    // Row-major variant consumes the counts as [pix, k] rows.
    let mut rows = vec![0i32; pix * k];
    for kk in 0..k {
        for p in 0..pix {
            rows[p * k + kk] = cols[kk * pix + p];
        }
    }
    let mut out_i = vec![0i32; out * pix];
    let mut out_f = vec![0.0f32; out * pix];
    let mut group = c.benchmark_group("igemm_conv_shape");
    group.bench_function("int_wx", |bch| {
        bch.iter(|| {
            parallel::with_num_threads(1, || {
                out_i.fill(0);
                igemm_wx(out, k, pix, &packed, &cols, &mut out_i);
            })
        })
    });
    group.bench_function("int_rows", |bch| {
        bch.iter(|| {
            parallel::with_num_threads(1, || {
                out_i.fill(0);
                igemm(pix, k, out, &rows, &packed, &mut out_i);
            })
        })
    });
    group.bench_function("float_f32", |bch| {
        bch.iter(|| {
            out_f.fill(0.0);
            gemm_serial(out, k, pix, &codes_f, &cols_f, &mut out_f);
        })
    });
    group.finish();
}

/// SIMD dispatch sweep on the same conv-shaped products: the integer
/// weights-times-columns kernel and the f32 GEMM forced to scalar, SSE2,
/// and (when the machine has it) AVX2, one thread throughout. The gap
/// between rows is the micro-kernel payoff in isolation.
fn bench_simd_levels(c: &mut Criterion) {
    let (out, k, pix) = (16usize, 200usize, 576usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(60);
    let cols: Vec<i32> = (0..k * pix).map(|_| rng.gen_range(0..16)).collect();
    let codes: Vec<i32> = (0..out * k).map(|_| rng.gen_range(-8..=8)).collect();
    let packed = PackedCodes::try_pack(&codes, out, k).expect("codes fit i8");
    let cols_f: Vec<f32> = cols.iter().map(|&v| v as f32).collect();
    let codes_f: Vec<f32> = codes.iter().map(|&v| v as f32).collect();
    let mut out_i = vec![0i32; out * pix];
    let mut out_f = vec![0.0f32; out * pix];
    let levels: Vec<(&str, SimdLevel)> =
        [("scalar", SimdLevel::Scalar), ("sse2", SimdLevel::Sse2), ("avx2", SimdLevel::Avx2)]
            .into_iter()
            .filter(|&(_, l)| l <= qsnc_tensor::detected_simd())
            .collect();

    let mut group = c.benchmark_group("igemm_simd_levels");
    for &(label, level) in &levels {
        group.bench_function(label, |bch| {
            bch.iter(|| {
                qsnc_tensor::with_simd_level(level, || {
                    parallel::with_num_threads(1, || {
                        out_i.fill(0);
                        igemm_wx(out, k, pix, &packed, &cols, &mut out_i);
                    })
                })
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gemm_simd_levels");
    for &(label, level) in &levels {
        group.bench_function(label, |bch| {
            bch.iter(|| {
                qsnc_tensor::with_simd_level(level, || {
                    out_f.fill(0.0);
                    gemm_serial(out, k, pix, &codes_f, &cols_f, &mut out_f);
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_serial_vs_parallel,
    bench_kernels_dense_input,
    bench_kernels_sparse_input,
    bench_thread_scaling,
    bench_igemm_vs_float,
    bench_simd_levels
);
criterion_main!(benches);
