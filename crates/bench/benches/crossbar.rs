//! Crossbar MAC throughput: single arrays and Eq. 1 tiled matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsnc_memristor::{Crossbar, DeviceConfig, TiledMatrix};
use qsnc_tensor::TensorRng;

fn bench_single_crossbar(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_matvec");
    for &size in &[8usize, 16, 32, 64] {
        let mut rng = TensorRng::seed(size as u64);
        let codes: Vec<i32> = (0..size * size).map(|_| rng.index(17) as i32 - 8).collect();
        let xb = Crossbar::from_codes(&codes, size, size, DeviceConfig::paper(4), None);
        let x: Vec<f32> = (0..size).map(|_| rng.index(16) as f32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| xb.matvec_code_units(std::hint::black_box(&x), None))
        });
    }
    group.finish();
}

fn bench_tiled_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiled_matvec");
    // LeNet fc1 geometry (400×84) and a larger FC layer.
    for &(in_dim, out_dim) in &[(400usize, 84usize), (1024, 256)] {
        let mut rng = TensorRng::seed(7);
        let codes: Vec<i32> = (0..in_dim * out_dim).map(|_| rng.index(17) as i32 - 8).collect();
        let tm = TiledMatrix::from_codes(&codes, in_dim, out_dim, 32, DeviceConfig::paper(4), None);
        let x: Vec<f32> = (0..in_dim).map(|_| rng.index(16) as f32).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{in_dim}x{out_dim}")),
            &in_dim,
            |b, _| b.iter(|| tm.matvec_code_units(std::hint::black_box(&x), None)),
        );
    }
    group.finish();
}

fn bench_noisy_reads(c: &mut Criterion) {
    let mut rng = TensorRng::seed(3);
    let codes: Vec<i32> = (0..32 * 32).map(|_| rng.index(17) as i32 - 8).collect();
    let cfg = DeviceConfig::paper(4).with_noise(0.0, 0.05);
    let xb = Crossbar::from_codes(&codes, 32, 32, cfg, None);
    let x: Vec<f32> = (0..32).map(|_| rng.index(16) as f32).collect();
    let mut read_rng = TensorRng::seed(4);
    c.bench_function("crossbar_matvec_noisy_32", |b| {
        b.iter(|| xb.matvec_code_units(std::hint::black_box(&x), Some(&mut read_rng)))
    });
}

criterion_group!(benches, bench_single_crossbar, bench_tiled_matrix, bench_noisy_reads);
criterion_main!(benches);
