//! Quantizer throughput: Weight Clustering (Eq. 6) vs direct fixed point
//! vs dynamic fixed point, and the activation quantizer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsnc_quant::{
    cluster_weights, direct_fixed_point, dynamic_fixed_quantize, ActivationQuantizer,
};
use qsnc_tensor::{init, TensorRng};

fn bench_weight_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("weight_quantization");
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut rng = TensorRng::seed(n as u64);
        let w = init::normal([n], 0.0, 0.2, &mut rng);
        group.bench_with_input(BenchmarkId::new("clustered", n), &n, |b, _| {
            b.iter(|| cluster_weights(std::hint::black_box(&w), 4))
        });
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| direct_fixed_point(std::hint::black_box(&w), 4))
        });
        group.bench_with_input(BenchmarkId::new("dynamic_fixed", n), &n, |b, _| {
            b.iter(|| dynamic_fixed_quantize(std::hint::black_box(&w), 8))
        });
    }
    group.finish();
}

fn bench_activation_quantizer(c: &mut Criterion) {
    let mut rng = TensorRng::seed(1);
    let x = init::uniform([100_000], 0.0, 16.0, &mut rng);
    let q = ActivationQuantizer::new(4);
    c.bench_function("activation_quantize_100k", |b| {
        b.iter(|| q.quantize(std::hint::black_box(&x)))
    });
}

fn bench_clustering_bit_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_bits");
    let mut rng = TensorRng::seed(2);
    let w = init::normal([10_000], 0.0, 0.2, &mut rng);
    for bits in [2u32, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| cluster_weights(std::hint::black_box(&w), bits))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_weight_methods,
    bench_activation_quantizer,
    bench_clustering_bit_sweep
);
criterion_main!(benches);
