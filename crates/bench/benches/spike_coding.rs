//! Spike coding throughput: rate encoding, IFC conversion (closed-form vs
//! cycle-level), and window scaling with bit width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsnc_memristor::{Ifc, SpikeEncoder};
use qsnc_quant::ActivationQuantizer;

fn bench_encode_decode(c: &mut Criterion) {
    let enc = SpikeEncoder::new(ActivationQuantizer::new(4));
    c.bench_function("spike_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1000 {
                let v = i as f32 * 0.015;
                acc += enc.decode(enc.encode(std::hint::black_box(v)));
            }
            acc
        })
    });
}

fn bench_ifc_closed_form_vs_simulation(c: &mut Criterion) {
    let ifc = Ifc::new(1.0, 255);
    c.bench_function("ifc_convert_closed_form", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for i in 0..1000 {
                total += ifc.convert(std::hint::black_box(i as f32 * 0.2));
            }
            total
        })
    });
    let mut group = c.benchmark_group("ifc_simulate_window");
    for m in [3u32, 4, 8] {
        let slots = 1usize << m;
        let charges = vec![0.7f32; slots];
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| ifc.simulate(std::hint::black_box(&charges)))
        });
    }
    group.finish();
}

fn bench_train_slot_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("spike_train_slots");
    for m in [3u32, 4, 8] {
        let enc = SpikeEncoder::new(ActivationQuantizer::new(m));
        let train = enc.encode(((1u32 << m) / 3) as f32);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| std::hint::black_box(&train).slots())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode_decode,
    bench_ifc_closed_form_vs_simulation,
    bench_train_slot_generation
);
criterion_main!(benches);
