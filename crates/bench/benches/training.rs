//! Training-step throughput: forward, backward, and full SGD steps for the
//! model zoo, with and without the Neuron Convergence stages.

use criterion::{criterion_group, criterion_main, Criterion};
use qsnc_nn::loss::softmax_cross_entropy;
use qsnc_nn::optim::{Optimizer, Sgd};
use qsnc_nn::{models, Mode};
use qsnc_quant::{insert_signal_stages, ActivationQuantizer, ActivationRegularizer};
use qsnc_tensor::{init, TensorRng};

fn bench_lenet_step(c: &mut Criterion) {
    let mut rng = TensorRng::seed(0);
    let mut net = models::lenet(0.5, 10, &mut rng);
    let x = init::uniform([16, 1, 28, 28], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();
    let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
    c.bench_function("lenet_train_step_b16", |b| {
        b.iter(|| {
            net.zero_grad();
            let logits = net.forward(std::hint::black_box(&x), Mode::Train);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(&grad);
            opt.step(&mut net.params());
        })
    });
    c.bench_function("lenet_forward_eval_b16", |b| {
        b.iter(|| net.forward(std::hint::black_box(&x), Mode::Eval))
    });
}

fn bench_qat_overhead(c: &mut Criterion) {
    let mut rng = TensorRng::seed(1);
    let mut net = models::lenet(0.5, 10, &mut rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        1e-5,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    let x = init::uniform([16, 1, 28, 28], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();
    let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
    c.bench_function("lenet_qat_train_step_b16", |b| {
        b.iter(|| {
            net.zero_grad();
            let logits = net.forward(std::hint::black_box(&x), Mode::Train);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(&grad);
            opt.step(&mut net.params());
        })
    });
}

fn bench_resnet_forward(c: &mut Criterion) {
    let mut rng = TensorRng::seed(2);
    let mut net = models::resnet(0.25, 10, &mut rng);
    let x = init::uniform([4, 3, 32, 32], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("resnet");
    group.sample_size(10);
    group.bench_function("forward_eval_b4", |b| {
        b.iter(|| net.forward(std::hint::black_box(&x), Mode::Eval))
    });
    group.finish();
}

criterion_group!(benches, bench_lenet_step, bench_qat_overhead, bench_resnet_forward);
criterion_main!(benches);
