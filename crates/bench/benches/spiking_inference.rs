//! Spiking-system inference throughput versus the software-quantized path.

use criterion::{criterion_group, criterion_main, Criterion};
use qsnc_memristor::{DeployConfig, SpikingNetwork};
use qsnc_nn::{models, Mode, Sequential};
use qsnc_quant::{
    insert_signal_stages, quantize_network_weights, ActivationQuantizer, ActivationRegularizer,
    QuantSwitch, WeightQuantMethod,
};
use qsnc_tensor::{init, TensorRng};

fn quantized_lenet(rng: &mut TensorRng) -> (Sequential, QuantSwitch) {
    let mut net = models::lenet(0.5, 10, rng);
    let (switch, _) = insert_signal_stages(
        &mut net,
        ActivationRegularizer::neuron_convergence(4),
        0.0,
        ActivationQuantizer::new(4),
    );
    switch.set_enabled(true);
    quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
    (net, switch)
}

fn bench_spiking_vs_software(c: &mut Criterion) {
    let mut rng = TensorRng::seed(0);
    let (mut net, _switch) = quantized_lenet(&mut rng);
    let config = DeployConfig::paper(4, 4);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    let x = init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("inference_lenet_4bit");
    group.sample_size(20);
    group.bench_function("spiking_substrate", |b| {
        b.iter(|| snn.infer(std::hint::black_box(&x), None))
    });
    group.bench_function("software_quantized", |b| {
        b.iter(|| net.forward(std::hint::black_box(&x), Mode::Eval))
    });
    group.finish();
}

/// Integer fast-path engine vs the exact float pipeline on the same
/// compiled network. `int_engine` is the allocation-free `infer_into`
/// entry point; `float_reference` is the float oracle it is bit-identical
/// to. Their ratio is the speedup the integer representation buys.
fn bench_int_engine_vs_float(c: &mut Criterion) {
    let mut rng = TensorRng::seed(4);
    let (net, _switch) = quantized_lenet(&mut rng);
    let config = DeployConfig::paper(4, 4);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    assert!(snn.has_fast_path(), "4-bit LeNet must compile the integer engine");
    let x = init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);
    let mut out = Vec::new();

    let mut group = c.benchmark_group("inference_lenet_4bit");
    group.sample_size(20);
    group.bench_function("int_engine", |b| {
        b.iter(|| snn.infer_into(std::hint::black_box(&x), &mut out))
    });
    group.bench_function("float_reference", |b| {
        b.iter(|| snn.infer_reference(std::hint::black_box(&x)))
    });
    group.finish();
}

fn bench_spiking_with_read_noise(c: &mut Criterion) {
    let mut rng = TensorRng::seed(1);
    let (net, _switch) = quantized_lenet(&mut rng);
    let mut config = DeployConfig::paper(4, 4);
    config.device = config.device.with_noise(0.0, 0.05);
    let snn = SpikingNetwork::compile(&net, &config, None).expect("compile");
    let x = init::uniform([1, 1, 28, 28], 0.0, 1.0, &mut rng);
    let mut read_rng = TensorRng::seed(2);

    let mut group = c.benchmark_group("inference_lenet_noisy");
    group.sample_size(20);
    group.bench_function("spiking_read_noise", |b| {
        b.iter(|| snn.infer(std::hint::black_box(&x), Some(&mut read_rng)))
    });
    group.finish();
}

fn bench_compile_time(c: &mut Criterion) {
    let mut rng = TensorRng::seed(3);
    let (net, _switch) = quantized_lenet(&mut rng);
    let config = DeployConfig::paper(4, 4);
    let mut group = c.benchmark_group("deployment");
    group.sample_size(20);
    group.bench_function("compile_lenet", |b| {
        b.iter(|| SpikingNetwork::compile(std::hint::black_box(&net), &config, None).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spiking_vs_software,
    bench_int_engine_vs_float,
    bench_spiking_with_read_noise,
    bench_compile_time
);
criterion_main!(benches);
