//! Property-based tests for quantizer invariants.

use proptest::prelude::*;
use qsnc_quant::{
    apply_fault, cluster_weights, direct_fixed_point, ActivationQuantizer,
    ActivationRegularizer, DynamicFixedPoint, FaultModel, RegKind,
};
use qsnc_tensor::{Tensor, TensorRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn activation_quantizer_idempotent(
        bits in 1u32..10,
        scale in 0.1f32..16.0,
        x in -100.0f32..100.0,
    ) {
        let q = ActivationQuantizer::with_scale(bits, scale);
        let once = q.quantize_value(x);
        prop_assert_eq!(q.quantize_value(once), once);
    }

    #[test]
    fn activation_quantizer_output_in_range(
        bits in 1u32..10,
        scale in 0.1f32..16.0,
        x in -1000.0f32..1000.0,
    ) {
        let q = ActivationQuantizer::with_scale(bits, scale);
        let y = q.quantize_value(x);
        prop_assert!(y >= 0.0);
        prop_assert!(y <= q.max_level() as f32 / scale + 1e-4);
    }

    #[test]
    fn activation_quantizer_monotone(
        bits in 1u32..10,
        a in -50.0f32..50.0,
        b in -50.0f32..50.0,
    ) {
        let q = ActivationQuantizer::new(bits);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize_value(lo) <= q.quantize_value(hi));
    }

    #[test]
    fn spike_round_trip_error_bounded(
        bits in 1u32..9,
        scale in 0.5f32..8.0,
        x in 0.0f32..10.0,
    ) {
        let q = ActivationQuantizer::with_scale(bits, scale);
        // Within the representable range the round-trip error is ≤ ½ LSB.
        let upper = q.max_level() as f32 / scale;
        prop_assume!(x <= upper);
        let back = q.from_spike_count(q.spike_count(x));
        prop_assert!((back - x).abs() <= 0.5 / scale + 1e-5);
    }

    #[test]
    fn clustering_no_worse_than_direct(
        data in proptest::collection::vec(-2.0f32..2.0, 8..128),
        bits in 2u32..8,
    ) {
        let w = Tensor::from_slice(&data);
        let c = cluster_weights(&w, bits);
        let d = direct_fixed_point(&w, bits);
        prop_assert!(c.mse <= d.mse + 1e-7, "clustered {} vs direct {}", c.mse, d.mse);
    }

    #[test]
    fn clustering_codes_bounded(
        data in proptest::collection::vec(-10.0f32..10.0, 4..64),
        bits in 1u32..8,
    ) {
        let w = Tensor::from_slice(&data);
        let q = cluster_weights(&w, bits);
        let bound = 1i32 << (bits - 1);
        prop_assert!(q.codes.iter().all(|&c| c.abs() <= bound));
    }

    #[test]
    fn dynamic_fixed_point_idempotent(
        data in proptest::collection::vec(-8.0f32..8.0, 4..64),
        bits in 2u32..16,
    ) {
        let t = Tensor::from_slice(&data);
        let fmt = DynamicFixedPoint::fit(bits, &t);
        let once = fmt.quantize(&t);
        prop_assert_eq!(fmt.quantize(&once), once);
    }

    #[test]
    fn dynamic_fixed_point_error_le_half_lsb(
        data in proptest::collection::vec(-4.0f32..4.0, 4..64),
        bits in 4u32..16,
    ) {
        let t = Tensor::from_slice(&data);
        let fmt = DynamicFixedPoint::fit(bits, &t);
        let q = fmt.quantize(&t);
        for (orig, quant) in t.iter().zip(q.iter()) {
            prop_assert!((orig - quant).abs() <= fmt.lsb() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn regularizer_nonnegative_and_even(
        bits in 1u32..9,
        alpha in 0.0f32..1.0,
        o in -50.0f32..50.0,
    ) {
        for kind in [RegKind::None, RegKind::L1, RegKind::TruncatedL1, RegKind::NeuronConvergence] {
            let r = ActivationRegularizer::new(kind, bits, alpha);
            prop_assert!(r.value(o) >= 0.0);
            prop_assert!((r.value(o) - r.value(-o)).abs() < 1e-5);
        }
    }

    #[test]
    fn regularizer_grad_matches_finite_difference(
        bits in 2u32..8,
        o in -20.0f32..20.0,
    ) {
        let r = ActivationRegularizer::neuron_convergence(bits);
        let theta = r.threshold();
        // Stay away from the kinks at 0 and ±θ.
        prop_assume!(o.abs() > 0.05);
        prop_assume!((o.abs() - theta).abs() > 0.05);
        let eps = 1e-2;
        let num = (r.value(o + eps) - r.value(o - eps)) / (2.0 * eps);
        prop_assert!((num - r.grad(o)).abs() < 1e-2);
    }

    #[test]
    fn fault_rate_zero_never_mutates(
        seed in 0u64..1000,
        len in 1usize..64,
    ) {
        let base: Vec<f32> = (0..len).map(|i| (i as f32) * 0.37 - 4.0).collect();
        for model in [
            FaultModel::StuckAtZero { rate: 0.0 },
            FaultModel::StuckAtMax { rate: 0.0 },
        ] {
            let mut w = Tensor::from_slice(&base);
            let hits = apply_fault(&mut w, model, &mut TensorRng::seed(seed));
            prop_assert_eq!(hits, 0);
            let bits: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
            let orig: Vec<u32> = base.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits, orig);
        }
    }

    #[test]
    fn fault_rate_one_hits_every_element(
        seed in 0u64..1000,
        len in 1usize..64,
    ) {
        let base: Vec<f32> = (0..len).map(|i| (i as f32) * 0.19 + 0.5).collect();
        let mut w = Tensor::from_slice(&base);
        let hits = apply_fault(
            &mut w,
            FaultModel::StuckAtZero { rate: 1.0 },
            &mut TensorRng::seed(seed),
        );
        prop_assert_eq!(hits, len);
        prop_assert!(w.iter().all(|&v| v == 0.0));

        let mut w = Tensor::from_slice(&base);
        let max = w.abs_max();
        let hits = apply_fault(
            &mut w,
            FaultModel::StuckAtMax { rate: 1.0 },
            &mut TensorRng::seed(seed),
        );
        prop_assert_eq!(hits, len);
        prop_assert!(w.iter().all(|&v| v.abs() == max));
    }

    #[test]
    fn fault_masks_are_seed_deterministic(
        seed in 0u64..1000,
        rate in 0.0f32..1.0,
    ) {
        let base: Vec<f32> = (0..128).map(|i| (i as f32) * 0.11 - 7.0).collect();
        for model in [
            FaultModel::StuckAtZero { rate },
            FaultModel::StuckAtMax { rate },
            FaultModel::Variation { sigma: rate },
        ] {
            let mut a = Tensor::from_slice(&base);
            let mut b = Tensor::from_slice(&base);
            let ha = apply_fault(&mut a, model, &mut TensorRng::seed(seed));
            let hb = apply_fault(&mut b, model, &mut TensorRng::seed(seed));
            prop_assert_eq!(ha, hb);
            let bits_a: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits_a, bits_b);
        }
    }
}
