//! Device-fault injection on quantized weights.
//!
//! Memristor crossbars suffer stuck-at faults and programming variation
//! (the paper's group cites its own defect-rescue work, ref. \[16\]). This
//! module provides the fault models the robustness ablation benches use.

use qsnc_nn::Sequential;
use qsnc_tensor::{Tensor, TensorRng};

/// A fault model applied to synaptic weights at deployment time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FaultModel {
    /// Each weight independently becomes 0 (stuck-off device pair) with the
    /// given probability.
    StuckAtZero {
        /// Per-device fault probability in `[0, 1]`.
        rate: f32,
    },
    /// Each weight independently saturates to ±(max magnitude in its
    /// tensor) with the given probability (stuck-on device).
    StuckAtMax {
        /// Per-device fault probability in `[0, 1]`.
        rate: f32,
    },
    /// Multiplicative log-normal programming variation:
    /// `w ← w · exp(N(0, σ²))`, the standard memristor write-noise model.
    Variation {
        /// Standard deviation of the log-conductance error.
        sigma: f32,
    },
}

/// Applies `model` to a single weight tensor, returning the number of
/// affected elements.
pub fn apply_fault(w: &mut Tensor, model: FaultModel, rng: &mut TensorRng) -> usize {
    match model {
        FaultModel::StuckAtZero { rate } => {
            assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
            let mut hits = 0;
            for v in w.iter_mut() {
                if rng.chance(rate) {
                    *v = 0.0;
                    hits += 1;
                }
            }
            hits
        }
        FaultModel::StuckAtMax { rate } => {
            assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
            let max = w.abs_max();
            // An all-zero tensor has no magnitude to saturate to: without
            // this guard the faulted elements would be overwritten with
            // ±0.0, flipping sign bits (and so byte-level content) while
            // claiming the tensor was faulted. Saturating to zero is a
            // genuine no-op, so report zero hits.
            if max == 0.0 {
                return 0;
            }
            let mut hits = 0;
            for v in w.iter_mut() {
                if rng.chance(rate) {
                    *v = if rng.chance(0.5) { max } else { -max };
                    hits += 1;
                }
            }
            hits
        }
        FaultModel::Variation { sigma } => {
            assert!(sigma >= 0.0, "sigma must be non-negative");
            if sigma == 0.0 {
                return 0;
            }
            for v in w.iter_mut() {
                *v *= rng.normal_with(0.0, sigma).exp();
            }
            w.len()
        }
    }
}

/// Applies `model` to every synaptic weight tensor of a network, returning
/// the total number of affected weights.
pub fn inject_network_faults(
    net: &mut Sequential,
    model: FaultModel,
    rng: &mut TensorRng,
) -> usize {
    let mut hits = 0;
    for p in net.params() {
        if p.is_weight {
            hits += apply_fault(p.value, model, rng);
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_zero_rate_is_respected() {
        let mut rng = TensorRng::seed(0);
        let mut w = Tensor::ones([10000]);
        let hits = apply_fault(&mut w, FaultModel::StuckAtZero { rate: 0.1 }, &mut rng);
        let zeros = w.count(|v| v == 0.0);
        assert_eq!(hits, zeros);
        assert!((zeros as f32 / 10000.0 - 0.1).abs() < 0.02, "zeros {zeros}");
    }

    #[test]
    fn stuck_at_max_saturates() {
        let mut rng = TensorRng::seed(1);
        let mut w = Tensor::from_slice(&[0.5; 100]);
        apply_fault(&mut w, FaultModel::StuckAtMax { rate: 1.0 }, &mut rng);
        assert!(w.iter().all(|&v| v.abs() == 0.5));
        assert!(w.iter().any(|&v| v < 0.0), "both polarities expected");
    }

    #[test]
    fn zero_rate_is_noop() {
        let mut rng = TensorRng::seed(2);
        let mut w = Tensor::from_slice(&[1.0, -2.0]);
        let orig = w.clone();
        assert_eq!(
            apply_fault(&mut w, FaultModel::StuckAtZero { rate: 0.0 }, &mut rng),
            0
        );
        assert_eq!(w, orig);
    }

    #[test]
    fn variation_preserves_sign_and_scale_statistically() {
        let mut rng = TensorRng::seed(3);
        let mut w = Tensor::ones([20000]);
        apply_fault(&mut w, FaultModel::Variation { sigma: 0.1 }, &mut rng);
        assert!(w.iter().all(|&v| v > 0.0));
        assert!((w.mean() - 1.0).abs() < 0.02, "mean {}", w.mean());
        assert!(w.std() > 0.05, "std {}", w.std());
    }

    fn bits_of(w: &Tensor) -> Vec<u32> {
        w.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn rate_zero_mutates_nothing_for_every_model() {
        for model in [
            FaultModel::StuckAtZero { rate: 0.0 },
            FaultModel::StuckAtMax { rate: 0.0 },
            FaultModel::Variation { sigma: 0.0 },
        ] {
            let mut rng = TensorRng::seed(7);
            let mut w = Tensor::from_slice(&[1.5, -2.25, 0.0, -0.0, f32::MIN_POSITIVE]);
            let before = bits_of(&w);
            assert_eq!(apply_fault(&mut w, model, &mut rng), 0, "{model:?}");
            assert_eq!(bits_of(&w), before, "{model:?} altered bytes at rate/sigma 0");
        }
    }

    #[test]
    fn rate_one_hits_every_element() {
        let mut rng = TensorRng::seed(8);
        let mut w = Tensor::from_slice(&[0.25, -0.75, 1.0, -1.0, 0.5]);
        let hits = apply_fault(&mut w, FaultModel::StuckAtZero { rate: 1.0 }, &mut rng);
        assert_eq!(hits, w.len());
        assert!(w.iter().all(|&v| v == 0.0));

        let mut w = Tensor::from_slice(&[0.25, -0.75, 1.0, -1.0, 0.5]);
        let hits = apply_fault(&mut w, FaultModel::StuckAtMax { rate: 1.0 }, &mut rng);
        assert_eq!(hits, w.len());
        assert!(w.iter().all(|&v| v.abs() == 1.0));
    }

    #[test]
    fn stuck_at_max_on_all_zero_tensor_is_a_noop() {
        let mut rng = TensorRng::seed(9);
        // Mix +0.0 and -0.0 so a ±0 overwrite would show up at bit level.
        let mut w = Tensor::from_slice(&[0.0, -0.0, 0.0, -0.0]);
        let before = bits_of(&w);
        let hits = apply_fault(&mut w, FaultModel::StuckAtMax { rate: 1.0 }, &mut rng);
        assert_eq!(hits, 0, "saturating a zero tensor affects nothing");
        assert_eq!(bits_of(&w), before, "sign bits of ±0.0 must survive");
    }

    #[test]
    fn fixed_seed_gives_byte_identical_fault_masks() {
        for model in [
            FaultModel::StuckAtZero { rate: 0.35 },
            FaultModel::StuckAtMax { rate: 0.35 },
            FaultModel::Variation { sigma: 0.2 },
        ] {
            let base: Vec<f32> = (0..512).map(|i| (i as f32 - 256.0) / 37.0).collect();
            let mut a = Tensor::from_slice(&base);
            let mut b = Tensor::from_slice(&base);
            let hits_a = apply_fault(&mut a, model, &mut TensorRng::seed(42));
            let hits_b = apply_fault(&mut b, model, &mut TensorRng::seed(42));
            assert_eq!(hits_a, hits_b, "{model:?}");
            assert_eq!(bits_of(&a), bits_of(&b), "{model:?} mask not reproducible");
            // And a different seed really does change the mask.
            let mut c = Tensor::from_slice(&base);
            apply_fault(&mut c, model, &mut TensorRng::seed(43));
            assert_ne!(bits_of(&a), bits_of(&c), "{model:?} ignores the seed");
        }
    }

    #[test]
    fn network_injection_counts_weights_only() {
        let mut rng = TensorRng::seed(4);
        let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
        let weight_total: usize = net
            .params()
            .iter()
            .filter(|p| p.is_weight)
            .map(|p| p.value.len())
            .sum();
        let hits =
            inject_network_faults(&mut net, FaultModel::Variation { sigma: 0.05 }, &mut rng);
        assert_eq!(hits, weight_total);
    }
}
