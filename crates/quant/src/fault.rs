//! Device-fault injection on quantized weights.
//!
//! Memristor crossbars suffer stuck-at faults and programming variation
//! (the paper's group cites its own defect-rescue work, ref. \[16\]). This
//! module provides the fault models the robustness ablation benches use.

use qsnc_nn::Sequential;
use qsnc_tensor::{Tensor, TensorRng};

/// A fault model applied to synaptic weights at deployment time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FaultModel {
    /// Each weight independently becomes 0 (stuck-off device pair) with the
    /// given probability.
    StuckAtZero {
        /// Per-device fault probability in `[0, 1]`.
        rate: f32,
    },
    /// Each weight independently saturates to ±(max magnitude in its
    /// tensor) with the given probability (stuck-on device).
    StuckAtMax {
        /// Per-device fault probability in `[0, 1]`.
        rate: f32,
    },
    /// Multiplicative log-normal programming variation:
    /// `w ← w · exp(N(0, σ²))`, the standard memristor write-noise model.
    Variation {
        /// Standard deviation of the log-conductance error.
        sigma: f32,
    },
}

/// Applies `model` to a single weight tensor, returning the number of
/// affected elements.
///
/// To stack several fault kinds on the same tensor use [`apply_faults`],
/// which fixes the application order; chaining `apply_fault` calls manually
/// makes the result depend on the call order (e.g. [`FaultModel::StuckAtMax`]
/// saturates to the *current* `abs_max`, which earlier faults may have
/// changed).
pub fn apply_fault(w: &mut Tensor, model: FaultModel, rng: &mut TensorRng) -> usize {
    match model {
        FaultModel::StuckAtZero { rate } => {
            assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
            let mut hits = 0;
            for v in w.iter_mut() {
                if rng.chance(rate) {
                    *v = 0.0;
                    hits += 1;
                }
            }
            hits
        }
        FaultModel::StuckAtMax { rate } => {
            assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
            let max = w.abs_max();
            // An all-zero tensor has no magnitude to saturate to: without
            // this guard the faulted elements would be overwritten with
            // ±0.0, flipping sign bits (and so byte-level content) while
            // claiming the tensor was faulted. Saturating to zero is a
            // genuine no-op, so report zero hits.
            if max == 0.0 {
                return 0;
            }
            let mut hits = 0;
            for v in w.iter_mut() {
                if rng.chance(rate) {
                    *v = if rng.chance(0.5) { max } else { -max };
                    hits += 1;
                }
            }
            hits
        }
        FaultModel::Variation { sigma } => {
            assert!(sigma >= 0.0, "sigma must be non-negative");
            if sigma == 0.0 {
                return 0;
            }
            for v in w.iter_mut() {
                *v *= rng.normal_with(0.0, sigma).exp();
            }
            w.len()
        }
    }
}

/// Rank used to canonicalize stacked fault models: class first, then the
/// class parameter, so the order is a pure function of the model *set*.
fn model_rank(m: &FaultModel) -> (u8, f32) {
    match *m {
        FaultModel::Variation { sigma } => (0, sigma),
        FaultModel::StuckAtMax { rate } => (1, rate),
        FaultModel::StuckAtZero { rate } => (2, rate),
    }
}

/// Applies several fault models to one tensor in a **canonical, documented
/// order**, returning the total number of affected elements.
///
/// The result is a pure function of the model set and the rng seed — the
/// order the caller lists the models in does not matter. Models are
/// canonicalized (class, then parameter ascending) and applied as:
///
/// 1. every [`FaultModel::Variation`] (ascending σ) — programming noise
///    perturbs the weights *before* hard faults pin them;
/// 2. every [`FaultModel::StuckAtMax`] (ascending rate) — saturating to the
///    **pre-fault** `abs_max` of the tensor, captured once before any model
///    runs, so variation cannot inflate the stuck magnitude;
/// 3. every [`FaultModel::StuckAtZero`] (ascending rate) — last, so a cell
///    targeted by both stuck kinds ends at 0: a dead (open) device wins
///    over a shorted one, matching the crossbar model where a stuck-off
///    cell passes no differential current.
pub fn apply_faults(w: &mut Tensor, models: &[FaultModel], rng: &mut TensorRng) -> usize {
    let mut ordered: Vec<FaultModel> = models.to_vec();
    ordered.sort_by(|a, b| {
        let (ca, pa) = model_rank(a);
        let (cb, pb) = model_rank(b);
        ca.cmp(&cb).then(pa.total_cmp(&pb))
    });
    let pre_fault_max = w.abs_max();
    let mut hits = 0;
    for model in ordered {
        match model {
            FaultModel::StuckAtMax { rate } => {
                assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
                if pre_fault_max == 0.0 {
                    continue;
                }
                for v in w.iter_mut() {
                    if rng.chance(rate) {
                        *v = if rng.chance(0.5) { pre_fault_max } else { -pre_fault_max };
                        hits += 1;
                    }
                }
            }
            other => hits += apply_fault(w, other, rng),
        }
    }
    hits
}

/// Applies `model` to every synaptic weight tensor of a network, returning
/// the total number of affected weights.
pub fn inject_network_faults(
    net: &mut Sequential,
    model: FaultModel,
    rng: &mut TensorRng,
) -> usize {
    let mut hits = 0;
    for p in net.params() {
        if p.is_weight {
            hits += apply_fault(p.value, model, rng);
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_zero_rate_is_respected() {
        let mut rng = TensorRng::seed(0);
        let mut w = Tensor::ones([10000]);
        let hits = apply_fault(&mut w, FaultModel::StuckAtZero { rate: 0.1 }, &mut rng);
        let zeros = w.count(|v| v == 0.0);
        assert_eq!(hits, zeros);
        assert!((zeros as f32 / 10000.0 - 0.1).abs() < 0.02, "zeros {zeros}");
    }

    #[test]
    fn stuck_at_max_saturates() {
        let mut rng = TensorRng::seed(1);
        let mut w = Tensor::from_slice(&[0.5; 100]);
        apply_fault(&mut w, FaultModel::StuckAtMax { rate: 1.0 }, &mut rng);
        assert!(w.iter().all(|&v| v.abs() == 0.5));
        assert!(w.iter().any(|&v| v < 0.0), "both polarities expected");
    }

    #[test]
    fn zero_rate_is_noop() {
        let mut rng = TensorRng::seed(2);
        let mut w = Tensor::from_slice(&[1.0, -2.0]);
        let orig = w.clone();
        assert_eq!(
            apply_fault(&mut w, FaultModel::StuckAtZero { rate: 0.0 }, &mut rng),
            0
        );
        assert_eq!(w, orig);
    }

    #[test]
    fn variation_preserves_sign_and_scale_statistically() {
        let mut rng = TensorRng::seed(3);
        let mut w = Tensor::ones([20000]);
        apply_fault(&mut w, FaultModel::Variation { sigma: 0.1 }, &mut rng);
        assert!(w.iter().all(|&v| v > 0.0));
        assert!((w.mean() - 1.0).abs() < 0.02, "mean {}", w.mean());
        assert!(w.std() > 0.05, "std {}", w.std());
    }

    fn bits_of(w: &Tensor) -> Vec<u32> {
        w.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn rate_zero_mutates_nothing_for_every_model() {
        for model in [
            FaultModel::StuckAtZero { rate: 0.0 },
            FaultModel::StuckAtMax { rate: 0.0 },
            FaultModel::Variation { sigma: 0.0 },
        ] {
            let mut rng = TensorRng::seed(7);
            let mut w = Tensor::from_slice(&[1.5, -2.25, 0.0, -0.0, f32::MIN_POSITIVE]);
            let before = bits_of(&w);
            assert_eq!(apply_fault(&mut w, model, &mut rng), 0, "{model:?}");
            assert_eq!(bits_of(&w), before, "{model:?} altered bytes at rate/sigma 0");
        }
    }

    #[test]
    fn rate_one_hits_every_element() {
        let mut rng = TensorRng::seed(8);
        let mut w = Tensor::from_slice(&[0.25, -0.75, 1.0, -1.0, 0.5]);
        let hits = apply_fault(&mut w, FaultModel::StuckAtZero { rate: 1.0 }, &mut rng);
        assert_eq!(hits, w.len());
        assert!(w.iter().all(|&v| v == 0.0));

        let mut w = Tensor::from_slice(&[0.25, -0.75, 1.0, -1.0, 0.5]);
        let hits = apply_fault(&mut w, FaultModel::StuckAtMax { rate: 1.0 }, &mut rng);
        assert_eq!(hits, w.len());
        assert!(w.iter().all(|&v| v.abs() == 1.0));
    }

    #[test]
    fn stuck_at_max_on_all_zero_tensor_is_a_noop() {
        let mut rng = TensorRng::seed(9);
        // Mix +0.0 and -0.0 so a ±0 overwrite would show up at bit level.
        let mut w = Tensor::from_slice(&[0.0, -0.0, 0.0, -0.0]);
        let before = bits_of(&w);
        let hits = apply_fault(&mut w, FaultModel::StuckAtMax { rate: 1.0 }, &mut rng);
        assert_eq!(hits, 0, "saturating a zero tensor affects nothing");
        assert_eq!(bits_of(&w), before, "sign bits of ±0.0 must survive");
    }

    #[test]
    fn fixed_seed_gives_byte_identical_fault_masks() {
        for model in [
            FaultModel::StuckAtZero { rate: 0.35 },
            FaultModel::StuckAtMax { rate: 0.35 },
            FaultModel::Variation { sigma: 0.2 },
        ] {
            let base: Vec<f32> = (0..512).map(|i| (i as f32 - 256.0) / 37.0).collect();
            let mut a = Tensor::from_slice(&base);
            let mut b = Tensor::from_slice(&base);
            let hits_a = apply_fault(&mut a, model, &mut TensorRng::seed(42));
            let hits_b = apply_fault(&mut b, model, &mut TensorRng::seed(42));
            assert_eq!(hits_a, hits_b, "{model:?}");
            assert_eq!(bits_of(&a), bits_of(&b), "{model:?} mask not reproducible");
            // And a different seed really does change the mask.
            let mut c = Tensor::from_slice(&base);
            apply_fault(&mut c, model, &mut TensorRng::seed(43));
            assert_ne!(bits_of(&a), bits_of(&c), "{model:?} ignores the seed");
        }
    }

    #[test]
    fn stacked_faults_are_order_independent() {
        // Regression: apply_faults must canonicalize the model list, so any
        // permutation yields byte-identical tensors for the same seed.
        let models = [
            FaultModel::StuckAtZero { rate: 0.2 },
            FaultModel::Variation { sigma: 0.15 },
            FaultModel::StuckAtMax { rate: 0.2 },
        ];
        let permutations: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let base: Vec<f32> = (0..512).map(|i| (i as f32 - 256.0) / 41.0).collect();
        let mut reference: Option<(usize, Vec<u32>)> = None;
        for perm in permutations {
            let ordered: Vec<FaultModel> = perm.iter().map(|&i| models[i]).collect();
            let mut w = Tensor::from_slice(&base);
            let hits = apply_faults(&mut w, &ordered, &mut TensorRng::seed(13));
            let bits = bits_of(&w);
            match &reference {
                None => reference = Some((hits, bits)),
                Some((h, b)) => {
                    assert_eq!(hits, *h, "hit count depends on list order {perm:?}");
                    assert_eq!(&bits, b, "faulted bytes depend on list order {perm:?}");
                }
            }
        }
        // Sanity: a manual order-dependent chain really would have differed
        // (stuck-at-max after variation saturates to the *inflated* max).
        let mut chained = Tensor::from_slice(&base);
        let mut rng = TensorRng::seed(13);
        apply_fault(&mut chained, models[1], &mut rng);
        apply_fault(&mut chained, models[2], &mut rng);
        apply_fault(&mut chained, models[0], &mut rng);
        let canonical_max = Tensor::from_slice(&base).abs_max();
        assert!(
            chained.abs_max() > canonical_max,
            "expected the naive chain to saturate above the pre-fault max"
        );
    }

    #[test]
    fn stuck_at_zero_wins_over_stuck_at_max_on_the_same_cell() {
        // Both stuck kinds at rate 1.0 target every cell; the documented
        // precedence (stuck-at-zero last) must leave everything dead.
        let mut rng = TensorRng::seed(14);
        let mut w = Tensor::from_slice(&[0.5, -1.5, 2.0, -0.25]);
        apply_faults(
            &mut w,
            &[
                FaultModel::StuckAtMax { rate: 1.0 },
                FaultModel::StuckAtZero { rate: 1.0 },
            ],
            &mut rng,
        );
        assert!(w.iter().all(|&v| v == 0.0), "stuck-at-zero must win: {w:?}");
    }

    #[test]
    fn stacked_saturation_uses_pre_fault_magnitude() {
        // Heavy variation would inflate abs_max; the canonical order must
        // saturate to the original magnitude instead.
        let base: Vec<f32> = (0..256).map(|i| ((i % 9) as f32 - 4.0) / 4.0).collect();
        let pre_max = Tensor::from_slice(&base).abs_max();
        let mut w = Tensor::from_slice(&base);
        apply_faults(
            &mut w,
            &[
                FaultModel::Variation { sigma: 0.8 },
                FaultModel::StuckAtMax { rate: 0.5 },
            ],
            &mut TensorRng::seed(15),
        );
        let saturated: Vec<f32> =
            w.iter().copied().filter(|v| v.abs() == pre_max).collect();
        assert!(
            !saturated.is_empty(),
            "rate 0.5 should saturate some cells to the pre-fault max"
        );
    }

    #[test]
    fn network_injection_counts_weights_only() {
        let mut rng = TensorRng::seed(4);
        let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
        let weight_total: usize = net
            .params()
            .iter()
            .filter(|p| p.is_weight)
            .map(|p| p.value.len())
            .sum();
        let hits =
            inject_network_faults(&mut net, FaultModel::Variation { sigma: 0.05 }, &mut rng);
        assert_eq!(hits, weight_total);
    }
}
