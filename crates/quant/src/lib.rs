//! # qsnc-quant
//!
//! The primary contribution of the reproduced paper: **data
//! quantization-aware deep networks** for spiking neuromorphic deployment
//! (Liu & Liu, DAC 2018).
//!
//! Two mechanisms recover the accuracy that naive quantization destroys:
//!
//! - **Neuron Convergence** ([`ActivationRegularizer`], Sec. 3.1 / Eq. 3):
//!   a training-time penalty that makes every layer's signals sparse and
//!   confined to one uniform range, so rounding them to `M`-bit fixed
//!   integers is nearly lossless.
//! - **Weight Clustering** ([`cluster_weights`], Sec. 3.2 / Eq. 6): maps
//!   synaptic weights onto an `N`-bit linear conductance grid with an
//!   optimized pitch, instead of blind rounding.
//!
//! The crate also implements the comparison baselines: direct quantization
//! without either mechanism, and the 8-bit **dynamic fixed point** scheme
//! of Gysel et al. ([`DynamicFixedPoint`], the paper's ref. \[23\]).
//!
//! Integration with `qsnc-nn` is through [`insert_signal_stages`] (splices
//! fake-quantization layers after every ReLU) and
//! [`quantize_network_weights`] (rewrites weights in place).

#![warn(missing_docs)]

mod activation;
mod dynamic_fixed;
pub mod fault;
pub mod mixed_precision;
mod power_of_two;
mod qat;
mod regularizer;
pub mod sensitivity;
mod weight_cluster;

pub use activation::ActivationQuantizer;
pub use dynamic_fixed::{dynamic_fixed_quantize, DynamicFixedPoint};
pub use fault::{apply_fault, apply_faults, inject_network_faults, FaultModel};
pub use mixed_precision::{
    apply_mixed_precision, assign_mixed_precision, PrecisionAssignment,
};
pub use power_of_two::{
    power_of_two_quantize, quantize_network_power_of_two, PowerOfTwoWeights,
};
pub use qat::{
    insert_signal_stages, network_saturation_rate, quantize_network_weights,
    reset_network_saturation, QuantSwitch, SignalStage, WeightQuantReport,
};
pub use regularizer::{ActivationRegularizer, RegKind};
pub use sensitivity::{weight_sensitivity, LayerSensitivity};
pub use weight_cluster::{
    cluster_weights, direct_fixed_point, quantize_weights, IntWeights, QuantizedWeights,
    WeightQuantMethod,
};
