//! Power-of-two ("multiplier-free") weight quantization — the Tann et al.
//! baseline (the paper's ref. \[24\], "Hardware-software codesign of
//! accurate, multiplier-free deep neural networks").
//!
//! Each weight becomes `±2^e` (or zero), so a MAC needs only shifts. The
//! paper contrasts this scheme with its linear-grid Weight Clustering: the
//! power-of-two grid is dense near zero but very coarse at the range edge,
//! while memristor conductances are natively *linear* — which is why the
//! paper's method fits the substrate better.

use qsnc_tensor::Tensor;

/// Result of power-of-two quantization.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerOfTwoWeights {
    /// Dequantized weights, same shape as the input.
    pub tensor: Tensor,
    /// Exponent range used: values are `0` or `±2^e` with
    /// `e ∈ [min_exp, max_exp]`.
    pub min_exp: i32,
    /// Largest exponent.
    pub max_exp: i32,
    /// Mean squared error versus the original weights.
    pub mse: f32,
}

/// Quantizes weights onto the set `{0} ∪ {±2^e}` with `bits` controlling
/// the number of representable magnitudes (`2^(bits−1) − 1` exponent steps
/// below the maximum, mirroring Tann et al.'s encoding: 1 sign bit + an
/// exponent field).
///
/// # Panics
///
/// Panics if `bits` is outside `2..=16`.
pub fn power_of_two_quantize(w: &Tensor, bits: u32) -> PowerOfTwoWeights {
    assert!((2..=16).contains(&bits), "bit width must be in 2..=16");
    let max_abs = w.abs_max();
    if max_abs == 0.0 {
        return PowerOfTwoWeights {
            tensor: w.clone(),
            min_exp: 0,
            max_exp: 0,
            mse: 0.0,
        };
    }
    // Exponent of the largest representable magnitude.
    let max_exp = max_abs.log2().round() as i32;
    let steps = (1i32 << (bits - 1)) - 1; // distinct magnitudes
    let min_exp = max_exp - (steps - 1).max(0);
    // Zero threshold: half of the smallest representable magnitude.
    let zero_cut = (2.0f32).powi(min_exp) * 0.5;

    let data: Vec<f32> = w
        .iter()
        .map(|&x| {
            let a = x.abs();
            if a < zero_cut {
                return 0.0;
            }
            let e = a.log2().round().clamp(min_exp as f32, max_exp as f32) as i32;
            let mag = (2.0f32).powi(e);
            if x >= 0.0 {
                mag
            } else {
                -mag
            }
        })
        .collect();
    let mse = w
        .iter()
        .zip(data.iter())
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f32>()
        / w.len().max(1) as f32;
    PowerOfTwoWeights {
        tensor: Tensor::from_vec(data, w.dims()),
        min_exp,
        max_exp,
        mse,
    }
}

/// Applies power-of-two quantization to every synaptic weight tensor of a
/// network, in place. Returns the total MSE weighted by element count.
pub fn quantize_network_power_of_two(net: &mut qsnc_nn::Sequential, bits: u32) -> f32 {
    let mut total = 0.0;
    let mut count = 0usize;
    for p in net.params() {
        if !p.is_weight {
            continue;
        }
        let q = power_of_two_quantize(p.value, bits);
        total += q.mse * p.value.len() as f32;
        count += p.value.len();
        *p.value = q.tensor;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_tensor::TensorRng;

    #[test]
    fn values_are_powers_of_two_or_zero() {
        let mut rng = TensorRng::seed(0);
        let w = qsnc_tensor::init::normal([500], 0.0, 0.3, &mut rng);
        let q = power_of_two_quantize(&w, 4);
        for &v in q.tensor.iter() {
            if v != 0.0 {
                let e = v.abs().log2();
                assert!((e - e.round()).abs() < 1e-6, "{v} is not ±2^e");
            }
        }
    }

    #[test]
    fn preserves_signs() {
        let w = Tensor::from_slice(&[0.5, -0.5, 0.3, -0.3]);
        let q = power_of_two_quantize(&w, 4);
        for (&orig, &quant) in w.iter().zip(q.tensor.iter()) {
            if quant != 0.0 {
                assert_eq!(orig.signum(), quant.signum());
            }
        }
    }

    #[test]
    fn exact_powers_survive() {
        let w = Tensor::from_slice(&[0.5, 0.25, -0.125]);
        let q = power_of_two_quantize(&w, 4);
        assert_eq!(q.tensor.as_slice(), &[0.5, 0.25, -0.125]);
        assert_eq!(q.mse, 0.0);
    }

    #[test]
    fn small_values_round_to_zero() {
        let w = Tensor::from_slice(&[1.0, 1e-6]);
        let q = power_of_two_quantize(&w, 3);
        assert_eq!(q.tensor.as_slice()[1], 0.0);
    }

    #[test]
    fn more_bits_reduce_error() {
        let mut rng = TensorRng::seed(1);
        let w = qsnc_tensor::init::normal([2000], 0.0, 0.25, &mut rng);
        let e3 = power_of_two_quantize(&w, 3).mse;
        let e5 = power_of_two_quantize(&w, 5).mse;
        assert!(e5 <= e3, "e3 {e3} e5 {e5}");
    }

    #[test]
    fn linear_clustering_beats_power_of_two_near_range_edge() {
        // Weights concentrated near the maximum magnitude: the linear grid
        // resolves them; the power-of-two grid collapses them onto one or
        // two magnitudes. This is the paper's argument for linear levels.
        let mut rng = TensorRng::seed(2);
        let w = qsnc_tensor::init::uniform([1000], 0.7, 1.0, &mut rng);
        let p2 = power_of_two_quantize(&w, 4);
        let lin = crate::cluster_weights(&w, 4);
        assert!(
            lin.mse < p2.mse,
            "linear {} should beat power-of-two {}",
            lin.mse,
            p2.mse
        );
    }

    #[test]
    fn network_quantization_rewrites_weights() {
        let mut rng = TensorRng::seed(3);
        let mut net = qsnc_nn::models::lenet(0.25, 10, &mut rng);
        let mse = quantize_network_power_of_two(&mut net, 4);
        assert!(mse > 0.0);
        for p in net.params() {
            if p.is_weight {
                for &v in p.value.iter() {
                    if v != 0.0 {
                        let e = v.abs().log2();
                        assert!((e - e.round()).abs() < 1e-5);
                    }
                }
            }
        }
    }

    #[test]
    fn zero_tensor_is_fixed_point() {
        let q = power_of_two_quantize(&Tensor::zeros([8]), 4);
        assert!(q.tensor.iter().all(|&v| v == 0.0));
        assert_eq!(q.mse, 0.0);
    }
}
