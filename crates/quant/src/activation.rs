//! Fixed-integer quantization of inter-layer signals (Sec. 3.1).
//!
//! In the spiking system, a signal is a spike count: a non-negative integer
//! in `[0, 2^M − 1]` for an `M`-bit time window, with the *same* range in
//! every layer ("uniform values"). [`ActivationQuantizer`] models this: it
//! maps a real activation to the nearest representable spike count (via an
//! optional uniform calibration scale) and back.

use qsnc_tensor::Tensor;

/// Quantizes activations to `M`-bit fixed integers.
///
/// The quantizer applies `q(x) = clamp(round(x·s), 0, 2^M − 1) / s` where
/// `s` is a **single uniform scale shared by all layers** (the paper's
/// design constraint; dynamic per-layer ranges are exactly what it argues
/// against). Networks trained with Neuron Convergence use `s = 1`: their
/// signals already live on the integer grid `[0, 2^(M−1)]`.
///
/// # Examples
///
/// ```
/// use qsnc_quant::ActivationQuantizer;
///
/// let q = ActivationQuantizer::new(4); // integers 0..=15, scale 1
/// assert_eq!(q.quantize_value(3.4), 3.0);
/// assert_eq!(q.quantize_value(99.0), 15.0);  // clamped to range
/// assert_eq!(q.quantize_value(-2.0), 0.0);   // spikes are non-negative
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ActivationQuantizer {
    bits: u32,
    scale: f32,
}

impl ActivationQuantizer {
    /// Creates an `bits`-bit quantizer with unit scale.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 16`.
    pub fn new(bits: u32) -> Self {
        ActivationQuantizer::with_scale(bits, 1.0)
    }

    /// Creates a quantizer with an explicit uniform scale.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is out of `1..=16` or `scale <= 0`.
    pub fn with_scale(bits: u32, scale: f32) -> Self {
        assert!((1..=16).contains(&bits), "bit width must be in 1..=16");
        assert!(scale > 0.0, "scale must be positive");
        ActivationQuantizer { bits, scale }
    }

    /// Calibrates a uniform scale from sample activations so the largest
    /// observed value maps to the top spike count. This is how the direct
    /// ("w/o") baselines are quantized: one global scale, no retraining.
    ///
    /// Falls back to unit scale for an all-zero sample.
    pub fn calibrated(bits: u32, sample: &Tensor) -> Self {
        let max = sample.max().max(0.0);
        let levels = ((1u32 << bits) - 1) as f32;
        let scale = if max > 0.0 { levels / max } else { 1.0 };
        ActivationQuantizer::with_scale(bits, scale)
    }

    /// Bit width `M`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The uniform scale `s`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Largest representable spike count, `2^M − 1`.
    pub fn max_level(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Quantizes one value (returns the dequantized representative).
    pub fn quantize_value(&self, x: f32) -> f32 {
        let level = (x * self.scale).round().clamp(0.0, self.max_level() as f32);
        level / self.scale
    }

    /// The integer spike count for one value.
    pub fn spike_count(&self, x: f32) -> u32 {
        (x * self.scale).round().clamp(0.0, self.max_level() as f32) as u32
    }

    /// Reconstructs an activation from a spike count.
    pub fn from_spike_count(&self, spikes: u32) -> f32 {
        spikes.min(self.max_level()) as f32 / self.scale
    }

    /// Quantizes a whole tensor (dequantized representatives).
    pub fn quantize(&self, x: &Tensor) -> Tensor {
        x.map(|v| self.quantize_value(v))
    }

    /// Mean squared quantization error over a tensor.
    pub fn quantization_mse(&self, x: &Tensor) -> f32 {
        if x.is_empty() {
            return 0.0;
        }
        x.iter()
            .map(|&v| {
                let q = self.quantize_value(v);
                (q - v) * (q - v)
            })
            .sum::<f32>()
            / x.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_integers_at_unit_scale() {
        let q = ActivationQuantizer::new(4);
        assert_eq!(q.quantize_value(0.4), 0.0);
        assert_eq!(q.quantize_value(0.6), 1.0);
        assert_eq!(q.quantize_value(7.5), 8.0);
        assert_eq!(q.max_level(), 15);
    }

    #[test]
    fn clamps_to_range() {
        let q = ActivationQuantizer::new(3);
        assert_eq!(q.quantize_value(100.0), 7.0);
        assert_eq!(q.quantize_value(-5.0), 0.0);
    }

    #[test]
    fn idempotent() {
        let q = ActivationQuantizer::new(5);
        for i in 0..200 {
            let x = i as f32 * 0.37 - 10.0;
            let once = q.quantize_value(x);
            assert_eq!(q.quantize_value(once), once);
        }
    }

    #[test]
    fn spike_count_round_trip() {
        let q = ActivationQuantizer::with_scale(4, 2.0);
        for spikes in 0..=q.max_level() {
            let x = q.from_spike_count(spikes);
            assert_eq!(q.spike_count(x), spikes);
        }
    }

    #[test]
    fn calibration_uses_full_range() {
        let sample = Tensor::from_slice(&[0.0, 0.2, 0.5, 1.0]);
        let q = ActivationQuantizer::calibrated(3, &sample);
        // Max sample (1.0) should map to the top level (7).
        assert_eq!(q.spike_count(1.0), 7);
        assert_eq!(q.quantize_value(1.0), 1.0);
    }

    #[test]
    fn calibration_of_zero_sample_is_identity_scale() {
        let q = ActivationQuantizer::calibrated(4, &Tensor::zeros([8]));
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn error_bounded_by_half_lsb_within_range() {
        let q = ActivationQuantizer::with_scale(6, 4.0);
        let lsb = 1.0 / 4.0;
        for i in 0..1000 {
            let x = i as f32 * 0.015; // within [0, 15] < 63/4
            let err = (q.quantize_value(x) - x).abs();
            assert!(err <= lsb / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn fewer_bits_means_more_error() {
        let mut rng = qsnc_tensor::TensorRng::seed(0);
        let x = qsnc_tensor::init::uniform([1000], 0.0, 1.0, &mut rng);
        let e8 = ActivationQuantizer::calibrated(8, &x).quantization_mse(&x);
        let e4 = ActivationQuantizer::calibrated(4, &x).quantization_mse(&x);
        let e2 = ActivationQuantizer::calibrated(2, &x).quantization_mse(&x);
        assert!(e8 < e4 && e4 < e2, "e8={e8} e4={e4} e2={e2}");
    }
}
