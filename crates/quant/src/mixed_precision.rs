//! Mixed-precision weight assignment.
//!
//! An extension the paper's Eq. 4/5 analysis points toward: layers differ
//! in how much quantization error they inject downstream, so a fixed
//! budget of crossbar devices is better spent unevenly. The greedy
//! assignment here starts every tensor at `min_bits` and repeatedly grants
//! one extra bit to the tensor whose quantization MSE (weighted by element
//! count, a proxy for injected error) improves most per added device,
//! until the budget is exhausted.

use crate::weight_cluster::cluster_weights;
use qsnc_nn::Sequential;
use qsnc_tensor::Tensor;
use std::collections::HashMap;

/// The per-tensor outcome of [`assign_mixed_precision`].
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionAssignment {
    /// Parameter name.
    pub name: String,
    /// Assigned bit width.
    pub bits: u32,
    /// Quantization MSE at the assigned width.
    pub mse: f32,
    /// Element count.
    pub count: usize,
}

/// Greedily assigns per-tensor bit widths in `[min_bits, max_bits]` under
/// a total **bit budget** `Σ bits_i · count_i ≤ budget_bits` (device count
/// is proportional to stored bits on the crossbar substrate).
///
/// Returns the assignment; the network is not modified. Use
/// [`apply_mixed_precision`] to rewrite the weights.
///
/// # Panics
///
/// Panics if `min_bits > max_bits`, either is outside `1..=16`, or the
/// budget cannot cover `min_bits` everywhere.
pub fn assign_mixed_precision(
    net: &mut Sequential,
    min_bits: u32,
    max_bits: u32,
    budget_bits: u64,
) -> Vec<PrecisionAssignment> {
    assert!(min_bits <= max_bits, "min_bits must not exceed max_bits");
    assert!(min_bits >= 1 && max_bits <= 16, "bit widths must be in 1..=16");

    // Collect weight tensors (copies — analysis only).
    let tensors: Vec<(String, Tensor)> = net
        .params()
        .iter()
        .filter(|p| p.is_weight)
        .map(|p| (p.name.clone(), p.value.clone()))
        .collect();
    let base_cost: u64 = tensors
        .iter()
        .map(|(_, t)| t.len() as u64 * min_bits as u64)
        .sum();
    assert!(
        base_cost <= budget_bits,
        "budget {budget_bits} cannot cover {min_bits} bits everywhere ({base_cost} needed)"
    );

    // Precompute MSE at every width.
    let mut mse: Vec<Vec<f32>> = Vec::with_capacity(tensors.len());
    for (_, t) in &tensors {
        let per_bits: Vec<f32> = (min_bits..=max_bits)
            .map(|b| cluster_weights(t, b).mse)
            .collect();
        mse.push(per_bits);
    }

    let mut bits: Vec<u32> = vec![min_bits; tensors.len()];
    let mut spent = base_cost;
    loop {
        // Best next upgrade: largest total-error reduction per added bit.
        let mut best: Option<(usize, f32)> = None;
        for (i, (_, t)) in tensors.iter().enumerate() {
            if bits[i] >= max_bits {
                continue;
            }
            let extra = t.len() as u64;
            if spent + extra > budget_bits {
                continue;
            }
            let idx = (bits[i] - min_bits) as usize;
            let gain = (mse[i][idx] - mse[i][idx + 1]) * t.len() as f32;
            let per_bit = gain / extra as f32;
            if best.is_none_or(|(_, g)| per_bit > g) {
                best = Some((i, per_bit));
            }
        }
        match best {
            Some((i, gain)) if gain > 0.0 => {
                spent += tensors[i].1.len() as u64;
                bits[i] += 1;
            }
            _ => break,
        }
    }

    tensors
        .into_iter()
        .zip(bits)
        .map(|((name, t), b)| PrecisionAssignment {
            mse: cluster_weights(&t, b).mse,
            count: t.len(),
            name,
            bits: b,
        })
        .collect()
}

/// Rewrites the network's weights per a mixed-precision assignment (by
/// parameter name), using Weight Clustering at each tensor's width.
///
/// # Panics
///
/// Panics if the assignment is missing any weight tensor.
pub fn apply_mixed_precision(net: &mut Sequential, assignment: &[PrecisionAssignment]) {
    let by_name: HashMap<&str, u32> = assignment
        .iter()
        .map(|a| (a.name.as_str(), a.bits))
        .collect();
    for p in net.params() {
        if !p.is_weight {
            continue;
        }
        let bits = *by_name
            .get(p.name.as_str())
            .unwrap_or_else(|| panic!("assignment missing {}", p.name));
        let q = cluster_weights(p.value, bits);
        *p.value = q.tensor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_tensor::TensorRng;

    fn lenet() -> Sequential {
        let mut rng = TensorRng::seed(0);
        qsnc_nn::models::lenet(0.25, 10, &mut rng)
    }

    fn total_cost(a: &[PrecisionAssignment]) -> u64 {
        a.iter().map(|x| x.bits as u64 * x.count as u64).sum()
    }

    #[test]
    fn budget_is_respected() {
        let mut net = lenet();
        let weights: u64 = net
            .params()
            .iter()
            .filter(|p| p.is_weight)
            .map(|p| p.value.len() as u64)
            .sum();
        let budget = weights * 5; // average 5 bits
        let a = assign_mixed_precision(&mut net, 2, 8, budget);
        assert!(total_cost(&a) <= budget, "cost {} > budget {budget}", total_cost(&a));
        assert!(a.iter().all(|x| (2..=8).contains(&x.bits)));
    }

    #[test]
    fn generous_budget_maxes_everything() {
        let mut net = lenet();
        let a = assign_mixed_precision(&mut net, 2, 4, u64::MAX);
        assert!(a.iter().all(|x| x.bits == 4));
    }

    #[test]
    fn tight_budget_keeps_minimum() {
        let mut net = lenet();
        let weights: u64 = net
            .params()
            .iter()
            .filter(|p| p.is_weight)
            .map(|p| p.value.len() as u64)
            .sum();
        let a = assign_mixed_precision(&mut net, 3, 8, weights * 3);
        assert!(a.iter().all(|x| x.bits == 3));
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn infeasible_budget_panics() {
        let mut net = lenet();
        assign_mixed_precision(&mut net, 4, 8, 10);
    }

    #[test]
    fn mixed_beats_uniform_at_equal_budget() {
        // Give one tensor a much wider distribution: the greedy assignment
        // should spend bits there and achieve lower total error than the
        // uniform split.
        let mut net = lenet();
        // Inflate conv1's weights so it dominates the error.
        for p in net.params() {
            if p.is_weight && p.name == "conv1.weight" {
                p.value.map_inplace(|x| x * 20.0);
            }
        }
        let weights: u64 = net
            .params()
            .iter()
            .filter(|p| p.is_weight)
            .map(|p| p.value.len() as u64)
            .sum();
        let budget = weights * 4;
        let a = assign_mixed_precision(&mut net, 2, 8, budget);
        let conv1 = a.iter().find(|x| x.name == "conv1.weight").unwrap();
        // conv1 is tiny relative to the FCs, so bits are cheap there and
        // its error is huge: it must get more than the uniform 4 bits.
        assert!(conv1.bits > 4, "conv1 got {} bits", conv1.bits);

        // Total weighted error no worse than uniform 4-bit.
        let mixed_err: f32 = a.iter().map(|x| x.mse * x.count as f32).sum();
        let uniform_err: f32 = {
            let mut total = 0.0;
            for p in net.params() {
                if p.is_weight {
                    total += cluster_weights(p.value, 4).mse * p.value.len() as f32;
                }
            }
            total
        };
        assert!(
            mixed_err <= uniform_err * 1.0001,
            "mixed {mixed_err} vs uniform {uniform_err}"
        );
    }

    #[test]
    fn apply_rewrites_on_assigned_grids() {
        let mut net = lenet();
        let a = assign_mixed_precision(&mut net, 2, 6, u64::MAX);
        apply_mixed_precision(&mut net, &a);
        for p in net.params() {
            if p.is_weight {
                let bits = a.iter().find(|x| x.name == p.name).unwrap().bits;
                let q = cluster_weights(p.value, bits);
                assert!(q.mse < 1e-10, "{} not on its {}-bit grid", p.name, bits);
            }
        }
    }
}
