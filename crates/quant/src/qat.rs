//! Quantization-aware training: splicing signal stages into a network and
//! rewriting its weights onto the fixed-point grid.
//!
//! The pipeline mirrors the paper's Sec. 3:
//!
//! 1. [`insert_signal_stages`] places a [`SignalStage`] after every ReLU —
//!    the "inter-layer signals". During training the stage adds the
//!    Neuron Convergence penalty `λ·R_g(O^i)` (Eq. 2/3) to the gradient;
//!    at deployment it quantizes the signal to `M`-bit fixed integers with
//!    a straight-through estimator if trained further.
//! 2. [`quantize_network_weights`] rewrites every synaptic weight tensor
//!    with [`cluster_weights`](crate::cluster_weights) (Eq. 6) or the
//!    direct fixed-point baseline.

use crate::activation::ActivationQuantizer;
use crate::regularizer::ActivationRegularizer;
use crate::weight_cluster::{quantize_weights, WeightQuantMethod};
use qsnc_nn::{Layer, Mode, Sequential};
use qsnc_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared switch controlling whether [`SignalStage`]s actually quantize.
///
/// Training per the paper runs with regularization only (quantization off);
/// deployment and evaluation flip quantization on. One controller is shared
/// by every stage spliced into a network.
#[derive(Debug, Clone, Default)]
pub struct QuantSwitch {
    enabled: Arc<AtomicBool>,
}

impl QuantSwitch {
    /// Creates a switch, initially off.
    pub fn new() -> Self {
        QuantSwitch::default()
    }

    /// Turns signal quantization on or off for all connected stages.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Current state.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

/// A fake-quantization + regularization stage on an inter-layer signal.
///
/// Forward: computes the regularization penalty on the *pre-quantization*
/// signal and (when the [`QuantSwitch`] is on) quantizes it. Backward:
/// straight-through estimator (gradient passes unchanged inside the
/// representable range, is zeroed where the signal was clamped) plus the
/// regularizer's subgradient scaled by `λ`.
#[derive(Debug, Clone)]
pub struct SignalStage {
    regularizer: ActivationRegularizer,
    lambda: f32,
    quantizer: ActivationQuantizer,
    switch: QuantSwitch,
    cached_input: Option<Tensor>,
    last_reg_loss: f32,
    tap: Option<Tensor>,
    /// Signals seen since the last [`SignalStage::reset_saturation_stats`].
    stat_elements: u64,
    /// Of those, how many sat at or above the range threshold `2^(M−1)`.
    stat_saturated: u64,
}

impl SignalStage {
    /// Creates a stage with regularization weight `lambda` (the paper's
    /// `λ_i`, uniform across layers here) and an `M`-bit quantizer wired to
    /// `switch`.
    pub fn new(
        regularizer: ActivationRegularizer,
        lambda: f32,
        quantizer: ActivationQuantizer,
        switch: QuantSwitch,
    ) -> Self {
        SignalStage {
            regularizer,
            lambda,
            quantizer,
            switch,
            cached_input: None,
            last_reg_loss: 0.0,
            tap: None,
            stat_elements: 0,
            stat_saturated: 0,
        }
    }

    /// Fraction of signals at or above `2^(M−1)` since the last
    /// [`SignalStage::reset_saturation_stats`] — the quantity the Neuron
    /// Convergence regularizer (Eq. 3) is meant to drive down. Returns
    /// `None` before any forward pass.
    pub fn saturation_rate(&self) -> Option<f32> {
        if self.stat_elements == 0 {
            None
        } else {
            Some(self.stat_saturated as f32 / self.stat_elements as f32)
        }
    }

    /// Clears the running saturation statistics (e.g. between epochs).
    pub fn reset_saturation_stats(&mut self) {
        self.stat_elements = 0;
        self.stat_saturated = 0;
    }

    /// The stage's quantizer.
    pub fn quantizer(&self) -> ActivationQuantizer {
        self.quantizer
    }

    /// Replaces the stage's quantizer (used by per-layer calibration of
    /// the dynamic fixed-point baseline).
    pub fn set_quantizer(&mut self, quantizer: ActivationQuantizer) {
        self.quantizer = quantizer;
    }
}

impl Layer for SignalStage {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "signal-stage"
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.last_reg_loss = self.lambda * self.regularizer.tensor_value(x);
        let theta = self.regularizer.threshold();
        let mut saturated = 0u64;
        let mut zeros = 0u64;
        for &v in x.iter() {
            if v.abs() >= theta {
                saturated += 1;
            }
            if v == 0.0 {
                zeros += 1;
            }
        }
        self.stat_elements += x.len() as u64;
        self.stat_saturated += saturated;
        if qsnc_telemetry::enabled() {
            qsnc_telemetry::counter_add("quant.signal.elements", x.len() as u64);
            qsnc_telemetry::counter_add("quant.signal.saturated", saturated);
            qsnc_telemetry::counter_add("quant.signal.zeros", zeros);
        }
        let y = if self.switch.is_enabled() {
            self.quantizer.quantize(x)
        } else {
            x.clone()
        };
        if mode == Mode::Train {
            self.cached_input = Some(x.clone());
        }
        self.tap = Some(y.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("signal-stage backward called before training-mode forward");
        assert_eq!(grad.len(), x.len(), "signal-stage grad length mismatch");
        let quantizing = self.switch.is_enabled();
        let upper = self.quantizer.max_level() as f32 / self.quantizer.scale();
        let data: Vec<f32> = grad
            .iter()
            .zip(x.iter())
            .map(|(&g, &xi)| {
                // STE: clamp region has zero data gradient.
                let pass = if quantizing && (xi < 0.0 || xi > upper) {
                    0.0
                } else {
                    g
                };
                pass + self.lambda * self.regularizer.grad(xi)
            })
            .collect();
        Tensor::from_vec(data, grad.dims())
    }

    fn regularization_loss(&self) -> f32 {
        self.last_reg_loss
    }

    fn output_tap(&self) -> Option<Tensor> {
        self.tap.clone()
    }
}

fn insert_stages_in_stack(
    stack: &mut Vec<Box<dyn Layer>>,
    make_stage: &dyn Fn() -> SignalStage,
) -> usize {
    // Recurse into containers first.
    let mut inserted = 0;
    for layer in stack.iter_mut() {
        for inner in layer.inner_stacks_mut() {
            inserted += insert_stages_in_stack(inner, make_stage);
        }
    }
    // Insert after each ReLU, walking backwards so indices stay valid.
    let positions: Vec<usize> = stack
        .iter()
        .enumerate()
        .filter(|(_, l)| l.name() == "relu")
        .map(|(i, _)| i)
        .collect();
    for &i in positions.iter().rev() {
        stack.insert(i + 1, Box::new(make_stage()));
        inserted += 1;
    }
    inserted
}

/// Splices a [`SignalStage`] after every ReLU in `net` (including ReLUs
/// inside residual blocks), all wired to the returned [`QuantSwitch`].
///
/// Returns `(switch, number_of_stages)`.
pub fn insert_signal_stages(
    net: &mut Sequential,
    regularizer: ActivationRegularizer,
    lambda: f32,
    quantizer: ActivationQuantizer,
) -> (QuantSwitch, usize) {
    let switch = QuantSwitch::new();
    let sw = switch.clone();
    let make = move || SignalStage::new(regularizer, lambda, quantizer, sw.clone());
    let count = insert_stages_in_stack(net.layers_mut(), &make);
    (switch, count)
}

fn visit_stages_mut(stack: &mut Vec<Box<dyn Layer>>, f: &mut dyn FnMut(&mut SignalStage)) {
    for layer in stack.iter_mut() {
        if let Some(stage) = layer.as_any_mut().downcast_mut::<SignalStage>() {
            f(stage);
        } else {
            for inner in layer.inner_stacks_mut() {
                visit_stages_mut(inner, f);
            }
        }
    }
}

/// Mean activation-saturation rate across every [`SignalStage`] in `net`
/// (including stages inside residual blocks), weighted by signal count.
/// Returns `None` if the network has no stages or none has run a forward
/// pass since the last [`reset_network_saturation`].
pub fn network_saturation_rate(net: &mut Sequential) -> Option<f32> {
    let mut elements = 0u64;
    let mut saturated = 0u64;
    visit_stages_mut(net.layers_mut(), &mut |stage| {
        elements += stage.stat_elements;
        saturated += stage.stat_saturated;
    });
    if elements == 0 {
        None
    } else {
        Some(saturated as f32 / elements as f32)
    }
}

/// Clears the saturation statistics of every [`SignalStage`] in `net`
/// (e.g. between epochs, so each epoch's rate is independent).
pub fn reset_network_saturation(net: &mut Sequential) {
    visit_stages_mut(net.layers_mut(), &mut |stage| stage.reset_saturation_stats());
}

/// Per-tensor report from [`quantize_network_weights`].
#[derive(Debug, Clone)]
pub struct WeightQuantReport {
    /// Parameter name, e.g. `"conv1.weight"`.
    pub name: String,
    /// Grid pitch used.
    pub scale: f32,
    /// Mean squared quantization error.
    pub mse: f32,
    /// Number of weights in the tensor.
    pub count: usize,
}

/// Rewrites every synaptic weight tensor of `net` onto the `N`-bit
/// fixed-point grid, in place, returning one report per tensor.
///
/// Biases are left untouched: in the crossbar they are implemented by the
/// IFC offset, not by memristor conductances.
pub fn quantize_network_weights(
    net: &mut Sequential,
    bits: u32,
    method: WeightQuantMethod,
) -> Vec<WeightQuantReport> {
    let mut reports = Vec::new();
    for p in net.params() {
        if !p.is_weight {
            continue;
        }
        let q = quantize_weights(p.value, bits, method);
        reports.push(WeightQuantReport {
            name: p.name.clone(),
            scale: q.scale,
            mse: q.mse,
            count: p.value.len(),
        });
        *p.value = q.tensor;
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regularizer::RegKind;
    use qsnc_nn::layers::{Linear, Relu};
    use qsnc_nn::models;
    use qsnc_tensor::TensorRng;

    fn stage(bits: u32, lambda: f32, on: bool) -> (SignalStage, QuantSwitch) {
        let switch = QuantSwitch::new();
        switch.set_enabled(on);
        let s = SignalStage::new(
            ActivationRegularizer::neuron_convergence(bits),
            lambda,
            ActivationQuantizer::new(bits),
            switch.clone(),
        );
        (s, switch)
    }

    #[test]
    fn stage_passes_through_when_off() {
        let (mut s, _) = stage(4, 0.0, false);
        let x = Tensor::from_slice(&[0.3, 7.6]);
        assert_eq!(s.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn stage_quantizes_when_on() {
        let (mut s, _) = stage(4, 0.0, true);
        let x = Tensor::from_slice(&[0.3, 7.6, 99.0]);
        let y = s.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[0.0, 8.0, 15.0]);
    }

    #[test]
    fn stage_reports_regularization_loss() {
        let (mut s, _) = stage(4, 0.5, false);
        let x = Tensor::from_slice(&[2.0, 10.0]); // θ=8: 0.1*2=0.2, (10−8)+1.0=3.0
        s.forward(&x, Mode::Train);
        assert!((s.regularization_loss() - 0.5 * 3.2).abs() < 1e-5);
    }

    #[test]
    fn backward_adds_regularizer_gradient() {
        let (mut s, _) = stage(4, 1.0, false);
        let x = Tensor::from_slice(&[2.0, 10.0]);
        s.forward(&x, Mode::Train);
        let g = s.backward(&Tensor::from_slice(&[1.0, 1.0]));
        // Inside range: 1 + α = 1.1; outside: 1 + (1 + α) = 2.1.
        assert!((g.as_slice()[0] - 1.1).abs() < 1e-6);
        assert!((g.as_slice()[1] - 2.1).abs() < 1e-6);
    }

    #[test]
    fn ste_zeroes_clamped_gradient() {
        let (mut s, _) = stage(3, 0.0, true); // range [0, 7]
        let x = Tensor::from_slice(&[3.0, 50.0, -1.0]);
        s.forward(&x, Mode::Train);
        let g = s.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0]));
        assert_eq!(g.as_slice(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn insertion_counts_relus_in_plain_net() {
        let mut rng = TensorRng::seed(0);
        let mut net = models::lenet(0.25, 10, &mut rng);
        let (_, n) = insert_signal_stages(
            &mut net,
            ActivationRegularizer::neuron_convergence(4),
            0.001,
            ActivationQuantizer::new(4),
        );
        assert_eq!(n, 3); // LeNet has 3 ReLUs
    }

    #[test]
    fn insertion_reaches_residual_interiors() {
        let mut rng = TensorRng::seed(1);
        let mut net = models::resnet(0.25, 10, &mut rng);
        let (_, n) = insert_signal_stages(
            &mut net,
            ActivationRegularizer::neuron_convergence(4),
            0.001,
            ActivationQuantizer::new(4),
        );
        // Stem ReLU + 8 blocks × (1 inner + 1 post-add ReLU) = 17.
        assert_eq!(n, 17);
    }

    #[test]
    fn switch_toggles_all_stages() {
        let mut rng = TensorRng::seed(2);
        let mut net = Sequential::new();
        net.push(Linear::new("fc", 4, 4, &mut rng));
        net.push(Relu::new());
        let (switch, _) = insert_signal_stages(
            &mut net,
            ActivationRegularizer::new(RegKind::None, 4, 0.1),
            0.0,
            ActivationQuantizer::new(4),
        );
        let x = qsnc_tensor::init::uniform([1, 4], 0.0, 1.0, &mut rng);
        let off = net.forward(&x, Mode::Eval);
        switch.set_enabled(true);
        let on = net.forward(&x, Mode::Eval);
        // With quantization on, outputs are integers.
        assert!(on.iter().all(|&v| (v - v.round()).abs() < 1e-6));
        assert_ne!(off, on);
    }

    #[test]
    fn weight_quantization_rewrites_in_place() {
        let mut rng = TensorRng::seed(3);
        let mut net = models::lenet(0.25, 10, &mut rng);
        let reports = quantize_network_weights(&mut net, 4, WeightQuantMethod::Clustered);
        assert_eq!(reports.len(), 4); // 2 conv + 2 fc weight tensors
        for p in net.params() {
            if p.is_weight {
                // Every weight sits exactly on some integer multiple of the
                // tensor's scale.
                let report = reports.iter().find(|r| r.name == p.name).unwrap();
                for &v in p.value.iter() {
                    let code = v / report.scale;
                    assert!((code - code.round()).abs() < 1e-4, "{} not on grid", v);
                }
            }
        }
    }

    #[test]
    fn saturation_rate_tracks_forward_passes() {
        let (mut s, _) = stage(3, 0.1, false); // θ = 4
        assert_eq!(s.saturation_rate(), None);
        s.forward(&Tensor::from_slice(&[0.0, 1.0, 4.0, 9.0]), Mode::Eval);
        assert!((s.saturation_rate().unwrap() - 0.5).abs() < 1e-6);
        s.reset_saturation_stats();
        assert_eq!(s.saturation_rate(), None);
    }

    #[test]
    fn neuron_convergence_drives_saturation_down_across_epochs() {
        // Direct check of the paper's Neuron Convergence claim: with the
        // Eq. 3 regularizer active, the fraction of signals at or above
        // 2^(M−1) shrinks as training proceeds.
        use qsnc_nn::optim::Sgd;
        use qsnc_nn::train::{train_epoch, Batch};

        let mut rng = TensorRng::seed(7);
        let mut net = Sequential::new();
        net.push(Linear::new("fc1", 4, 32, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new("fc2", 32, 2, &mut rng));
        // Inflate the first layer so the ReLU output starts well above θ.
        for p in net.params() {
            if p.name == "fc1.weight" {
                *p.value = p.value.map(|w| w * 12.0);
            }
        }
        let (_, n) = insert_signal_stages(
            &mut net,
            ActivationRegularizer::neuron_convergence(3), // θ = 4
            0.02,
            ActivationQuantizer::new(3),
        );
        assert_eq!(n, 1);

        let batches: Vec<Batch> = (0..8)
            .map(|_| {
                let mut images = Vec::new();
                let mut labels = Vec::new();
                for _ in 0..16 {
                    let class = rng.index(2);
                    let center = if class == 0 { -1.0 } else { 1.0 };
                    for _ in 0..4 {
                        images.push(center + rng.normal_with(0.0, 0.3));
                    }
                    labels.push(class);
                }
                Batch::new(Tensor::from_vec(images, [16, 4]), labels)
            })
            .collect();

        let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
        let mut rates = Vec::new();
        for epoch in 0..6 {
            reset_network_saturation(&mut net);
            train_epoch(&mut net, &mut opt, &batches, epoch);
            rates.push(network_saturation_rate(&mut net).unwrap());
        }
        assert!(
            rates[0] > 0.05,
            "test net never saturated, nothing to drive down: {rates:?}"
        );
        assert!(
            rates.last().unwrap() < rates.first().unwrap(),
            "saturation did not decrease: {rates:?}"
        );
    }

    #[test]
    fn clustered_reports_lower_mse_than_direct() {
        let mut rng = TensorRng::seed(4);
        let mut net_a = models::lenet(0.25, 10, &mut rng);
        let mut rng2 = TensorRng::seed(4);
        let mut net_b = models::lenet(0.25, 10, &mut rng2);
        let direct = quantize_network_weights(&mut net_a, 3, WeightQuantMethod::DirectFixedPoint);
        let clustered = quantize_network_weights(&mut net_b, 3, WeightQuantMethod::Clustered);
        let total = |r: &[WeightQuantReport]| -> f32 {
            r.iter().map(|x| x.mse * x.count as f32).sum()
        };
        assert!(total(&clustered) <= total(&direct));
    }
}
