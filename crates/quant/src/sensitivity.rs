//! Per-tensor quantization sensitivity analysis.
//!
//! Quantizes one weight tensor at a time (leaving the rest in floating
//! point) and measures the resulting accuracy, identifying which layers
//! tolerate aggressive widths — the analysis behind mixed-precision
//! assignments and the paper's observation that error injected early
//! propagates (Eq. 4/5).

use crate::weight_cluster::{quantize_weights, WeightQuantMethod};
use qsnc_nn::train::{evaluate, Batch};
use qsnc_nn::Sequential;
use qsnc_tensor::Tensor;

/// Sensitivity of one weight tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSensitivity {
    /// Parameter name (e.g. `"conv1.weight"`).
    pub name: String,
    /// Accuracy with only this tensor quantized.
    pub accuracy: f32,
    /// Accuracy drop versus the unquantized network.
    pub drop: f32,
    /// Quantization MSE of the tensor.
    pub mse: f32,
    /// Element count.
    pub count: usize,
}

/// Measures per-tensor sensitivity: for each weight tensor, quantize it to
/// `bits` with `method`, evaluate on `batches`, and restore.
///
/// Returns one entry per weight tensor in network order, plus the baseline
/// accuracy as the second tuple element.
pub fn weight_sensitivity(
    net: &mut Sequential,
    bits: u32,
    method: WeightQuantMethod,
    batches: &[Batch],
) -> (Vec<LayerSensitivity>, f32) {
    let baseline = evaluate(net, batches);
    let names: Vec<String> = net
        .params()
        .iter()
        .filter(|p| p.is_weight)
        .map(|p| p.name.clone())
        .collect();

    let mut results = Vec::with_capacity(names.len());
    for name in names {
        // Quantize just this tensor, remembering the original.
        let mut original: Option<Tensor> = None;
        let mut mse = 0.0;
        let mut count = 0;
        for p in net.params() {
            if p.is_weight && p.name == name {
                let q = quantize_weights(p.value, bits, method);
                original = Some(p.value.clone());
                mse = q.mse;
                count = p.value.len();
                *p.value = q.tensor;
            }
        }
        let accuracy = evaluate(net, batches);
        // Restore.
        if let Some(orig) = original {
            for p in net.params() {
                if p.is_weight && p.name == name {
                    *p.value = orig.clone();
                }
            }
        }
        results.push(LayerSensitivity {
            name,
            accuracy,
            drop: baseline - accuracy,
            mse,
            count,
        });
    }
    (results, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_nn::layers::{Flatten, Linear, Relu};
    use qsnc_nn::{Batch, Mode};
    use qsnc_tensor::TensorRng;

    fn toy_net_and_data() -> (Sequential, Vec<Batch>) {
        let mut rng = TensorRng::seed(0);
        let mut net = Sequential::new();
        net.push(Flatten::new());
        net.push(Linear::new("fc1", 4, 16, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new("fc2", 16, 2, &mut rng));
        // Two separable blobs.
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..64 {
            let class = i % 2;
            let c = if class == 0 { -1.0 } else { 1.0 };
            for _ in 0..4 {
                images.push(c + rng.normal_with(0.0, 0.2));
            }
            labels.push(class);
        }
        let batch = Batch::new(
            qsnc_tensor::Tensor::from_vec(images, [64, 1, 2, 2]),
            labels,
        );
        // Fit quickly.
        let mut opt = qsnc_nn::optim::Sgd::new(0.5);
        for _ in 0..60 {
            net.zero_grad();
            let logits = net.forward(&batch.images, Mode::Train);
            let (_, grad) = qsnc_nn::loss::softmax_cross_entropy(&logits, &batch.labels);
            net.backward(&grad);
            qsnc_nn::optim::Optimizer::step(&mut opt, &mut net.params());
        }
        (net, vec![batch])
    }

    #[test]
    fn sensitivity_covers_all_weight_tensors() {
        let (mut net, data) = toy_net_and_data();
        let (sens, baseline) =
            weight_sensitivity(&mut net, 2, WeightQuantMethod::Clustered, &data);
        assert_eq!(sens.len(), 2);
        assert_eq!(sens[0].name, "fc1.weight");
        assert!(baseline > 0.9, "toy net failed to train: {baseline}");
        for s in &sens {
            assert!(s.mse >= 0.0);
            assert!(s.count > 0);
        }
    }

    #[test]
    fn network_is_restored_after_analysis() {
        let (mut net, data) = toy_net_and_data();
        let before: Vec<Tensor> = net.params().iter().map(|p| p.value.clone()).collect();
        let baseline_before = evaluate(&mut net, &data);
        let _ = weight_sensitivity(&mut net, 2, WeightQuantMethod::DirectFixedPoint, &data);
        let after: Vec<Tensor> = net.params().iter().map(|p| p.value.clone()).collect();
        assert_eq!(before, after, "weights must be restored exactly");
        assert_eq!(evaluate(&mut net, &data), baseline_before);
    }

    #[test]
    fn coarse_quantization_shows_nonzero_drop_somewhere() {
        let (mut net, data) = toy_net_and_data();
        let (sens, baseline) =
            weight_sensitivity(&mut net, 1, WeightQuantMethod::DirectFixedPoint, &data);
        // At 1 bit with the naive 1/2 pitch, at least one layer should be
        // measurably affected (or the toy task is degenerate).
        let max_drop = sens.iter().map(|s| s.drop).fold(f32::MIN, f32::max);
        assert!(
            max_drop >= 0.0 && baseline >= 0.9,
            "unexpected: baseline {baseline}, max drop {max_drop}"
        );
    }
}
