//! Dynamic fixed-point quantization — the 8-bit comparison baseline
//! (Gysel et al., "Hardware-oriented approximation of convolutional neural
//! networks", ref. \[23\] of the paper).
//!
//! "Dynamic" means each tensor (each layer's weights, each layer's
//! activations) gets its own integer/fractional bit split chosen from its
//! value range. This recovers accuracy cheaply in software but — as the
//! paper argues — is expensive on a spiking substrate: 8-bit signals need
//! 256-slot spike windows and per-layer ranges break the uniform-hardware
//! assumption.

use qsnc_tensor::Tensor;

/// A per-tensor dynamic fixed-point format: `bits` total (two's-complement,
/// one sign bit) with `frac_bits` fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct DynamicFixedPoint {
    bits: u32,
    frac_bits: i32,
}

impl DynamicFixedPoint {
    /// Chooses the fractional length for `sample` so that its largest
    /// magnitude just fits: `IL = ⌈log₂ max|x|⌉ + 1` (sign), `FL = B − IL`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=32`.
    pub fn fit(bits: u32, sample: &Tensor) -> Self {
        assert!((2..=32).contains(&bits), "bit width must be in 2..=32");
        let max = sample.abs_max();
        let mut int_bits = if max > 0.0 {
            max.log2().floor() as i32 + 1
        } else {
            0
        };
        // Two's complement is asymmetric: the largest positive code is
        // 2^(B−1) − 1, so a maximum just below 2^int_bits may still clip by
        // more than ½ LSB. Widen the integer field in that case.
        let largest = |ib: i32| ((1i64 << (bits - 1)) - 1) as f32 * (2.0f32).powi(ib + 1 - bits as i32);
        if max > 0.0 && max > largest(int_bits) {
            int_bits += 1;
        }
        let frac_bits = bits as i32 - 1 - int_bits;
        DynamicFixedPoint { bits, frac_bits }
    }

    /// Total bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Fractional bit count (may be negative for very large ranges).
    pub fn frac_bits(&self) -> i32 {
        self.frac_bits
    }

    /// Smallest representable step.
    pub fn lsb(&self) -> f32 {
        (2.0f32).powi(-self.frac_bits)
    }

    /// Quantizes one value to this format.
    pub fn quantize_value(&self, x: f32) -> f32 {
        let lsb = self.lsb();
        let max_code = (1i64 << (self.bits - 1)) - 1;
        let min_code = -(1i64 << (self.bits - 1));
        let code = ((x / lsb).round() as i64).clamp(min_code, max_code);
        code as f32 * lsb
    }

    /// Quantizes a tensor.
    pub fn quantize(&self, x: &Tensor) -> Tensor {
        x.map(|v| self.quantize_value(v))
    }
}

/// Convenience: fit-and-quantize a tensor in one call, returning the tensor
/// and the chosen format.
pub fn dynamic_fixed_quantize(x: &Tensor, bits: u32) -> (Tensor, DynamicFixedPoint) {
    let fmt = DynamicFixedPoint::fit(bits, x);
    (fmt.quantize(x), fmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_tensor::TensorRng;

    #[test]
    fn fit_chooses_enough_integer_bits() {
        let t = Tensor::from_slice(&[3.7, -1.0]);
        let fmt = DynamicFixedPoint::fit(8, &t);
        // max 3.7 needs 2 integer bits (+ sign) → FL = 8 − 1 − 2 = 5.
        assert_eq!(fmt.frac_bits(), 5);
        // Largest magnitude must survive quantization roughly intact.
        assert!((fmt.quantize_value(3.7) - 3.7).abs() <= fmt.lsb());
    }

    #[test]
    fn small_ranges_get_fine_resolution() {
        let t = Tensor::from_slice(&[0.06, -0.01]);
        let fmt = DynamicFixedPoint::fit(8, &t);
        assert!(fmt.frac_bits() > 7, "frac bits {}", fmt.frac_bits());
        assert!((fmt.quantize_value(0.06) - 0.06).abs() < 0.005);
    }

    #[test]
    fn eight_bit_error_is_small() {
        let mut rng = TensorRng::seed(0);
        let x = qsnc_tensor::init::normal([4096], 0.0, 0.5, &mut rng);
        let (q, fmt) = dynamic_fixed_quantize(&x, 8);
        let mse: f32 = x
            .iter()
            .zip(q.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            / x.len() as f32;
        assert!(mse < (fmt.lsb() * fmt.lsb()) / 4.0 + 1e-9, "mse {mse}");
    }

    #[test]
    fn quantization_is_idempotent() {
        let mut rng = TensorRng::seed(1);
        let x = qsnc_tensor::init::uniform([128], -2.0, 2.0, &mut rng);
        let fmt = DynamicFixedPoint::fit(8, &x);
        let once = fmt.quantize(&x);
        assert_eq!(fmt.quantize(&once), once);
    }

    #[test]
    fn negative_extreme_is_representable() {
        let fmt = DynamicFixedPoint::fit(4, &Tensor::from_slice(&[1.0]));
        // 4 bits, FL = 2: codes −8..7 → values −2.0..1.75.
        assert_eq!(fmt.quantize_value(-2.0), -2.0);
        assert_eq!(fmt.quantize_value(5.0), 1.75);
    }

    #[test]
    fn zero_sample_does_not_crash() {
        let fmt = DynamicFixedPoint::fit(8, &Tensor::zeros([4]));
        assert_eq!(fmt.quantize_value(0.0), 0.0);
    }
}
