//! Weight Clustering: fixed-point synaptic weights on a linear grid
//! (Sec. 3.2, Eq. 6).
//!
//! The memristor crossbar offers `N`-bit conductance levels on a *linear*
//! grid. Eq. 6 asks for the grid assignment `D` (integers in
//! `{0, ±1, …, ±2^(N−1)}`) and implicitly a grid pitch minimizing
//! `‖D·s − W‖²`:
//!
//! - [`direct_fixed_point`] uses the paper's literal pitch `s = 2^(−N)`
//!   (pure rounding, the "w/o clustering" baseline);
//! - [`cluster_weights`] *learns* the pitch by alternating nearest-level
//!   assignment with a closed-form least-squares scale update — the 1-D
//!   constrained k-means the paper describes solving "by k-nearest
//!   neighbors".

use qsnc_tensor::Tensor;

/// How synaptic weights are mapped to the fixed-point grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum WeightQuantMethod {
    /// Round to the literal `D/2^N` grid (no scale optimization).
    DirectFixedPoint,
    /// The paper's Weight Clustering: optimized grid pitch (Eq. 6).
    Clustered,
}

impl std::fmt::Display for WeightQuantMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightQuantMethod::DirectFixedPoint => f.write_str("direct"),
            WeightQuantMethod::Clustered => f.write_str("clustered"),
        }
    }
}

/// Result of quantizing one weight tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedWeights {
    /// Dequantized weights `codes[i] · scale`, same shape as the input.
    pub tensor: Tensor,
    /// Grid pitch `s` (the conductance LSB in the crossbar).
    pub scale: f32,
    /// Integer level per weight, each in `[−2^(N−1), 2^(N−1)]`.
    pub codes: Vec<i32>,
    /// Mean squared error versus the original weights.
    pub mse: f32,
}

/// A weight tensor in its integer deployment form: `i8` grid levels plus an
/// exactly-decomposed grid pitch.
///
/// This is what Eq. 6 actually produces — the paper's `D` (integer levels)
/// and pitch — exported without the float rehydration that
/// [`QuantizedWeights::tensor`] performs. The pitch is carried both as the
/// original `f32` and as the exact pair `mantissa · 2^shift` (an odd `i32`
/// mantissa and a power-of-two shift), so integer inference engines can
/// reconstruct `scale` bit-for-bit and keep all per-layer arithmetic on
/// integers until the final rescale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntWeights {
    /// Grid level per weight, each in `[−2^(N−1), 2^(N−1)]`, row-major in
    /// the source tensor's layout.
    pub codes: Vec<i8>,
    /// Odd integer mantissa of the pitch: `scale = mantissa · 2^shift`.
    pub mantissa: i32,
    /// Power-of-two shift of the pitch.
    pub shift: i32,
}

impl IntWeights {
    /// Builds the integer deployment form directly from a code/pitch pair —
    /// the export path deployment artifacts take, where the codes come from
    /// an already-compiled layer rather than a [`QuantizedWeights`].
    ///
    /// Returns `None` when a code does not fit `i8` or the pitch is
    /// zero/non-finite, mirroring [`QuantizedWeights::int_weights`].
    pub fn from_codes(codes: &[i32], scale: f32) -> Option<IntWeights> {
        if !(scale.is_finite() && scale != 0.0) {
            return None;
        }
        let codes: Option<Vec<i8>> = codes.iter().map(|&c| i8::try_from(c).ok()).collect();
        let (mantissa, shift) = decompose_scale(scale);
        Some(IntWeights { codes: codes?, mantissa, shift })
    }

    /// Reconstructs the grid pitch; bit-identical to the `scale` this was
    /// derived from.
    pub fn scale(&self) -> f32 {
        self.mantissa as f32 * (2.0f32).powi(self.shift)
    }
}

/// Splits a finite nonzero `f32` into `(mantissa, shift)` with an odd
/// integer mantissa such that `mantissa · 2^shift == x` exactly.
fn decompose_scale(x: f32) -> (i32, i32) {
    debug_assert!(x.is_finite() && x != 0.0);
    let bits = x.to_bits();
    let biased_exp = ((bits >> 23) & 0xFF) as i32;
    let frac = (bits & 0x7F_FFFF) as i32;
    let (mut m, mut e) = if biased_exp == 0 {
        (frac, -126 - 23) // subnormal: no implicit leading bit
    } else {
        (frac | 1 << 23, biased_exp - 127 - 23)
    };
    while m & 1 == 0 {
        m >>= 1;
        e += 1;
    }
    if bits >> 31 != 0 {
        m = -m;
    }
    (m, e)
}

impl QuantizedWeights {
    /// Exports the integer deployment form: `i8` codes plus the exact
    /// `mantissa · 2^shift` pitch decomposition.
    ///
    /// Returns `None` when a code does not fit `i8` (only possible at
    /// `N = 8`, where the inclusive bound `2^(N−1) = 128` exceeds
    /// `i8::MAX`) or the pitch is zero/non-finite — callers fall back to
    /// the float path in that case.
    pub fn int_weights(&self) -> Option<IntWeights> {
        if !(self.scale.is_finite() && self.scale != 0.0) {
            return None;
        }
        let codes: Option<Vec<i8>> = self.codes.iter().map(|&c| i8::try_from(c).ok()).collect();
        let (mantissa, shift) = decompose_scale(self.scale);
        Some(IntWeights { codes: codes?, mantissa, shift })
    }
}

fn level_bound(bits: u32) -> i32 {
    1i32 << (bits - 1)
}

fn assign(w: &[f32], scale: f32, bound: i32) -> Vec<i32> {
    w.iter()
        .map(|&x| ((x / scale).round() as i32).clamp(-bound, bound))
        .collect()
}

fn mse_of(w: &[f32], codes: &[i32], scale: f32) -> f32 {
    if w.is_empty() {
        return 0.0;
    }
    w.iter()
        .zip(codes.iter())
        .map(|(&x, &c)| {
            let q = c as f32 * scale;
            (q - x) * (q - x)
        })
        .sum::<f32>()
        / w.len() as f32
}

fn build(w: &Tensor, codes: Vec<i32>, scale: f32) -> QuantizedWeights {
    let data: Vec<f32> = codes.iter().map(|&c| c as f32 * scale).collect();
    let mse = mse_of(w.as_slice(), &codes, scale);
    QuantizedWeights {
        tensor: Tensor::from_vec(data, w.dims()),
        scale,
        codes,
        mse,
    }
}

/// Quantizes weights to the literal `D/2^N` grid of Eq. 6 (the "without
/// Weight Clustering" baseline).
///
/// # Panics
///
/// Panics if `bits` is outside `1..=16`.
pub fn direct_fixed_point(w: &Tensor, bits: u32) -> QuantizedWeights {
    assert!((1..=16).contains(&bits), "bit width must be in 1..=16");
    let scale = (2.0f32).powi(-(bits as i32));
    let codes = assign(w.as_slice(), scale, level_bound(bits));
    build(w, codes, scale)
}

/// The paper's Weight Clustering: alternates nearest-level assignment and a
/// closed-form least-squares pitch update until convergence (Eq. 6).
///
/// The scale update for fixed codes `d` is `s* = Σ wᵢdᵢ / Σ dᵢ²`, the exact
/// minimizer of `‖d·s − w‖²`. Initialization spreads the observed weight
/// range over the available levels.
///
/// # Examples
///
/// ```
/// use qsnc_quant::{cluster_weights, direct_fixed_point};
/// use qsnc_tensor::Tensor;
///
/// let w = Tensor::from_slice(&[0.31, -0.17, 0.08, 0.29, -0.33, 0.02]);
/// let q = cluster_weights(&w, 4);
///
/// // Every weight becomes an integer code on the learned pitch:
/// // w ≈ code · scale, codes within ±2^(N−1).
/// assert_eq!(q.codes.len(), w.len());
/// assert!(q.codes.iter().all(|c| c.abs() <= 8));
/// for (orig, quant) in w.iter().zip(q.tensor.iter()) {
///     assert!((orig - quant).abs() <= q.scale / 2.0 + 1e-6);
/// }
///
/// // The fitted pitch beats the fixed 1/2^N grid of the no-clustering
/// // baseline on reconstruction error.
/// assert!(q.mse <= direct_fixed_point(&w, 4).mse);
/// ```
///
/// # Panics
///
/// Panics if `bits` is outside `1..=16`.
pub fn cluster_weights(w: &Tensor, bits: u32) -> QuantizedWeights {
    assert!((1..=16).contains(&bits), "bit width must be in 1..=16");
    let _span = qsnc_telemetry::span!("quant.cluster");
    let bound = level_bound(bits);
    let ws = w.as_slice();
    let max_abs = w.abs_max();
    if max_abs == 0.0 {
        let codes = vec![0i32; w.len()];
        return finish(build(w, codes, (2.0f32).powi(-(bits as i32))), 0);
    }
    // Initial pitch: span the weight range exactly.
    let mut scale = max_abs / bound as f32;
    let mut codes = assign(ws, scale, bound);
    let mut best = build(w, codes.clone(), scale);
    let mut iterations = 0u64;

    for _ in 0..50 {
        iterations += 1;
        // Scale update (least squares with fixed assignment).
        let num: f32 = ws.iter().zip(codes.iter()).map(|(&x, &d)| x * d as f32).sum();
        let den: f32 = codes.iter().map(|&d| (d as f32) * (d as f32)).sum();
        if den == 0.0 {
            break;
        }
        let new_scale = num / den;
        if !(new_scale.is_finite() && new_scale > 0.0) {
            break;
        }
        let new_codes = assign(ws, new_scale, bound);
        let changed = new_codes != codes || (new_scale - scale).abs() > 1e-9 * scale.abs();
        scale = new_scale;
        codes = new_codes;
        let candidate = build(w, codes.clone(), scale);
        if candidate.mse < best.mse {
            best = candidate;
        }
        if !changed {
            break;
        }
    }
    finish(best, iterations)
}

/// Records the clustering residual (`‖D·s − W‖²` per weight) and iteration
/// count before handing the result back.
fn finish(q: QuantizedWeights, iterations: u64) -> QuantizedWeights {
    if qsnc_telemetry::enabled() {
        qsnc_telemetry::counter_add("quant.cluster.calls", 1);
        qsnc_telemetry::counter_add("quant.cluster.iterations", iterations);
        qsnc_telemetry::observe(
            "quant.cluster.residual",
            q.mse as f64,
            &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
        );
    }
    q
}

/// Quantizes with the chosen method.
///
/// # Panics
///
/// Panics if `bits` is outside `1..=16`.
pub fn quantize_weights(w: &Tensor, bits: u32, method: WeightQuantMethod) -> QuantizedWeights {
    match method {
        WeightQuantMethod::DirectFixedPoint => direct_fixed_point(w, bits),
        WeightQuantMethod::Clustered => cluster_weights(w, bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsnc_tensor::TensorRng;

    #[test]
    fn direct_uses_power_of_two_pitch() {
        let w = Tensor::from_slice(&[0.1, -0.3, 0.26]);
        let q = direct_fixed_point(&w, 3);
        assert_eq!(q.scale, 0.125);
        // 0.1 → 0.125 (code 1), −0.3 → −0.25 (code −2), 0.26 → 0.25 (2).
        assert_eq!(q.codes, vec![1, -2, 2]);
        assert_eq!(q.tensor.as_slice(), &[0.125, -0.25, 0.25]);
    }

    #[test]
    fn direct_clamps_large_weights() {
        let w = Tensor::from_slice(&[5.0, -5.0]);
        let q = direct_fixed_point(&w, 2);
        // Bound = 2, scale = 0.25 → ±0.5 max.
        assert_eq!(q.codes, vec![2, -2]);
        assert_eq!(q.tensor.as_slice(), &[0.5, -0.5]);
    }

    #[test]
    fn clustering_never_worse_than_direct() {
        let mut rng = TensorRng::seed(0);
        for seed in 0..10u64 {
            let mut r = TensorRng::seed(seed);
            let std = rng.uniform(0.01, 2.0);
            let w = qsnc_tensor::init::normal([256], 0.0, std, &mut r);
            for bits in 2..=6 {
                let direct = direct_fixed_point(&w, bits);
                let clustered = cluster_weights(&w, bits);
                assert!(
                    clustered.mse <= direct.mse + 1e-9,
                    "bits={bits} std={std}: clustered {} > direct {}",
                    clustered.mse,
                    direct.mse
                );
            }
        }
    }

    #[test]
    fn clustering_beats_coarse_scale_sweep() {
        // The learned pitch should be at least as good as the best pitch in
        // a coarse exhaustive sweep.
        let mut rng = TensorRng::seed(1);
        let w = qsnc_tensor::init::normal([200], 0.0, 0.2, &mut rng);
        let bits = 4;
        let bound = level_bound(bits);
        let clustered = cluster_weights(&w, bits);
        let mut sweep_best = f32::INFINITY;
        for i in 1..=400 {
            let s = w.abs_max() * i as f32 / (400.0 * bound as f32) * 2.0;
            let codes = assign(w.as_slice(), s, bound);
            sweep_best = sweep_best.min(mse_of(w.as_slice(), &codes, s));
        }
        assert!(
            clustered.mse <= sweep_best * 1.02,
            "clustered {} vs sweep best {}",
            clustered.mse,
            sweep_best
        );
    }

    #[test]
    fn quantization_is_idempotent() {
        let mut rng = TensorRng::seed(2);
        let w = qsnc_tensor::init::normal([64], 0.0, 0.3, &mut rng);
        let q1 = cluster_weights(&w, 4);
        let q2 = cluster_weights(&q1.tensor, 4);
        for (a, b) in q1.tensor.iter().zip(q2.tensor.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn codes_respect_level_bound() {
        let mut rng = TensorRng::seed(3);
        let w = qsnc_tensor::init::normal([512], 0.0, 1.0, &mut rng);
        for bits in 1..=8 {
            let q = cluster_weights(&w, bits);
            let bound = level_bound(bits);
            assert!(q.codes.iter().all(|&c| c.abs() <= bound));
            // Dequantized values are codes × scale exactly.
            for (v, &c) in q.tensor.iter().zip(q.codes.iter()) {
                assert_eq!(*v, c as f32 * q.scale);
            }
        }
    }

    #[test]
    fn zero_tensor_stays_zero() {
        let q = cluster_weights(&Tensor::zeros([10]), 4);
        assert!(q.tensor.iter().all(|&v| v == 0.0));
        assert_eq!(q.mse, 0.0);
    }

    #[test]
    fn more_bits_reduce_error() {
        let mut rng = TensorRng::seed(4);
        let w = qsnc_tensor::init::normal([1024], 0.0, 0.25, &mut rng);
        let e3 = cluster_weights(&w, 3).mse;
        let e4 = cluster_weights(&w, 4).mse;
        let e6 = cluster_weights(&w, 6).mse;
        assert!(e6 < e4 && e4 < e3, "e3={e3} e4={e4} e6={e6}");
    }

    #[test]
    fn int_weights_round_trip_scale_and_codes() {
        let mut rng = TensorRng::seed(5);
        let w = qsnc_tensor::init::normal([300], 0.0, 0.4, &mut rng);
        for bits in 2..=7 {
            let q = cluster_weights(&w, bits);
            let iw = q.int_weights().expect("codes fit i8 for N ≤ 7");
            // Pitch reconstructs bit-for-bit and the mantissa is odd.
            assert_eq!(iw.scale().to_bits(), q.scale.to_bits(), "bits={bits}");
            assert_eq!(iw.mantissa.rem_euclid(2), 1, "mantissa must be odd");
            // Codes round-trip through i8.
            assert_eq!(iw.codes.len(), q.codes.len());
            for (&c8, &c32) in iw.codes.iter().zip(q.codes.iter()) {
                assert_eq!(i32::from(c8), c32);
            }
        }
    }

    #[test]
    fn int_weights_rejects_codes_beyond_i8() {
        // N = 8 admits the inclusive bound 2^7 = 128 > i8::MAX.
        let w = Tensor::from_slice(&[5.0, -5.0, 0.1]);
        let q = direct_fixed_point(&w, 8);
        assert!(q.codes.contains(&128));
        assert!(q.int_weights().is_none());
        // But an N = 8 tensor whose codes all stay within i8 exports fine.
        let w = Tensor::from_slice(&[0.1, -0.2]);
        let q = direct_fixed_point(&w, 8);
        assert!(q.int_weights().is_some());
    }

    #[test]
    fn decompose_scale_is_exact_on_awkward_pitches() {
        for &s in &[0.125f32, 0.1, 1.0 / 3.0, 6.1e-5, f32::MIN_POSITIVE / 4.0, -0.75] {
            let (m, e) = decompose_scale(s);
            assert_eq!((m as f32 * (2.0f32).powi(e)).to_bits(), s.to_bits(), "s={s}");
        }
    }

    #[test]
    fn method_dispatch() {
        let w = Tensor::from_slice(&[0.3, -0.1]);
        let d = quantize_weights(&w, 3, WeightQuantMethod::DirectFixedPoint);
        let c = quantize_weights(&w, 3, WeightQuantMethod::Clustered);
        assert_eq!(d.scale, 0.125);
        assert!(c.mse <= d.mse);
    }
}
