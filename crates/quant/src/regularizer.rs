//! Activation regularizers, including the paper's **Neuron Convergence**
//! term (Eq. 3 and Fig. 3).
//!
//! During training, a per-element penalty `rg(o)` is added for every
//! inter-layer signal `o`, with gradient `λ·rg'(o)` injected into the
//! backward pass. The paper compares four shapes (its Fig. 3):
//!
//! - **None** — unregularized baseline,
//! - **L1** — `|o|`, sparsity only,
//! - **Truncated L1** — `max(|o| − 2^(M−1), 0)`, range restriction only,
//! - **Neuron Convergence** — `α·|o|` inside the target range plus
//!   `(|o| − 2^(M−1))` outside: sparse *and* range-fixed (Eq. 3).

use qsnc_tensor::Tensor;

/// Which regularization shape to apply to inter-layer signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RegKind {
    /// No regularization.
    None,
    /// Plain L1: `|o|`.
    L1,
    /// Truncated L1: `max(|o| − θ, 0)` with `θ = 2^(M−1)`.
    TruncatedL1,
    /// The paper's Neuron Convergence (Eq. 3).
    NeuronConvergence,
}

impl std::fmt::Display for RegKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RegKind::None => "none",
            RegKind::L1 => "l1",
            RegKind::TruncatedL1 => "truncated-l1",
            RegKind::NeuronConvergence => "neuron-convergence",
        };
        f.write_str(s)
    }
}

/// A configured activation regularizer.
///
/// # Examples
///
/// ```
/// use qsnc_quant::{ActivationRegularizer, RegKind};
///
/// // 2-bit Neuron Convergence, as drawn in the paper's Fig. 3.
/// let reg = ActivationRegularizer::new(RegKind::NeuronConvergence, 2, 0.1);
/// assert_eq!(reg.threshold(), 2.0);          // 2^(M-1)
/// assert!((reg.value(1.0) - 0.1).abs() < 1e-6);      // α·|o| inside
/// assert!((reg.value(3.0) - (1.0 + 0.3)).abs() < 1e-6); // (|o|-θ) + α·|o|
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ActivationRegularizer {
    kind: RegKind,
    bits: u32,
    alpha: f32,
}

impl ActivationRegularizer {
    /// Creates a regularizer targeting `bits`-bit signals with sparsity
    /// weight `alpha` (the paper uses α = 0.1).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 16`.
    pub fn new(kind: RegKind, bits: u32, alpha: f32) -> Self {
        assert!((1..=16).contains(&bits), "bit width must be in 1..=16");
        ActivationRegularizer { kind, bits, alpha }
    }

    /// The paper's default: Neuron Convergence with α = 0.1.
    pub fn neuron_convergence(bits: u32) -> Self {
        ActivationRegularizer::new(RegKind::NeuronConvergence, bits, 0.1)
    }

    /// The regularization shape.
    pub fn kind(&self) -> RegKind {
        self.kind
    }

    /// Target bit width `M`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The range threshold `θ = 2^(M−1)`.
    pub fn threshold(&self) -> f32 {
        (1u32 << (self.bits - 1)) as f32
    }

    /// Penalty for a single signal value (Eq. 3 for
    /// [`RegKind::NeuronConvergence`]).
    pub fn value(&self, o: f32) -> f32 {
        let a = o.abs();
        let theta = self.threshold();
        match self.kind {
            RegKind::None => 0.0,
            RegKind::L1 => a,
            RegKind::TruncatedL1 => (a - theta).max(0.0),
            RegKind::NeuronConvergence => {
                if a >= theta {
                    (a - theta) + self.alpha * a
                } else {
                    self.alpha * a
                }
            }
        }
    }

    /// Subgradient of [`value`](Self::value) at `o` (0 at the kink).
    pub fn grad(&self, o: f32) -> f32 {
        if o == 0.0 {
            return 0.0;
        }
        let s = o.signum();
        let a = o.abs();
        let theta = self.threshold();
        match self.kind {
            RegKind::None => 0.0,
            RegKind::L1 => s,
            RegKind::TruncatedL1 => {
                if a >= theta {
                    s
                } else {
                    0.0
                }
            }
            RegKind::NeuronConvergence => {
                if a >= theta {
                    s * (1.0 + self.alpha)
                } else {
                    s * self.alpha
                }
            }
        }
    }

    /// Total penalty over a tensor of signals (the paper's `R_g(O^i)`).
    pub fn tensor_value(&self, o: &Tensor) -> f32 {
        if self.kind == RegKind::None {
            return 0.0;
        }
        o.iter().map(|&x| self.value(x)).sum()
    }

    /// Element-wise subgradient tensor.
    pub fn tensor_grad(&self, o: &Tensor) -> Tensor {
        o.map(|x| self.grad(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero_everywhere() {
        let r = ActivationRegularizer::new(RegKind::None, 4, 0.1);
        for &o in &[-10.0, -1.0, 0.0, 1.0, 10.0] {
            assert_eq!(r.value(o), 0.0);
            assert_eq!(r.grad(o), 0.0);
        }
    }

    #[test]
    fn l1_is_absolute_value() {
        let r = ActivationRegularizer::new(RegKind::L1, 4, 0.1);
        assert_eq!(r.value(-3.0), 3.0);
        assert_eq!(r.grad(-3.0), -1.0);
        assert_eq!(r.grad(2.0), 1.0);
    }

    #[test]
    fn truncated_l1_is_flat_inside_range() {
        let r = ActivationRegularizer::new(RegKind::TruncatedL1, 3, 0.1);
        // θ = 4
        assert_eq!(r.value(3.9), 0.0);
        assert_eq!(r.grad(3.9), 0.0);
        assert!((r.value(5.0) - 1.0).abs() < 1e-6);
        assert_eq!(r.grad(5.0), 1.0);
    }

    #[test]
    fn neuron_convergence_matches_eq3() {
        let r = ActivationRegularizer::neuron_convergence(4); // θ = 8, α = 0.1
        // Inside: α|o|
        assert!((r.value(4.0) - 0.4).abs() < 1e-6);
        assert!((r.grad(4.0) - 0.1).abs() < 1e-6);
        // Outside: (|o| − θ) + α|o|
        assert!((r.value(10.0) - (2.0 + 1.0)).abs() < 1e-6);
        assert!((r.grad(10.0) - 1.1).abs() < 1e-6);
        // Symmetric.
        assert_eq!(r.value(-10.0), r.value(10.0));
        assert_eq!(r.grad(-10.0), -r.grad(10.0));
    }

    #[test]
    fn neuron_convergence_dominates_truncated_l1() {
        // Fig. 3: the proposed curve lies above truncated-l1 everywhere
        // o ≠ 0 (it adds the sparsity term).
        let nc = ActivationRegularizer::neuron_convergence(2);
        let tl = ActivationRegularizer::new(RegKind::TruncatedL1, 2, 0.1);
        for i in 1..100 {
            let o = i as f32 * 0.1;
            assert!(nc.value(o) > tl.value(o));
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let r = ActivationRegularizer::neuron_convergence(3);
        let eps = 1e-3;
        for &o in &[-6.0, -3.9, -1.0, 0.5, 3.5, 4.5, 9.0] {
            let num = (r.value(o + eps) - r.value(o - eps)) / (2.0 * eps);
            assert!(
                (num - r.grad(o)).abs() < 1e-2,
                "at {o}: numeric {num} vs {}",
                r.grad(o)
            );
        }
    }

    #[test]
    fn tensor_forms_agree_with_scalar() {
        let r = ActivationRegularizer::neuron_convergence(4);
        let t = Tensor::from_slice(&[1.0, -2.0, 9.0]);
        let expected: f32 = t.iter().map(|&x| r.value(x)).sum();
        assert!((r.tensor_value(&t) - expected).abs() < 1e-6);
        let g = r.tensor_grad(&t);
        assert_eq!(g.as_slice()[2], r.grad(9.0));
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn zero_bits_panics() {
        ActivationRegularizer::new(RegKind::L1, 0, 0.1);
    }
}
