//! Telemetry counters must stay exact when increments arrive from the
//! scoped worker threads of `qsnc_tensor::parallel` — the same threads the
//! instrumented gemm/forward paths run on under `QSNC_THREADS > 1`.

use qsnc_telemetry::{testing, TelemetryMode};
use qsnc_tensor::parallel::{par_map_shards, with_num_threads};

#[test]
fn counters_are_exact_across_parallel_shards() {
    let _guard = testing::lock();
    qsnc_telemetry::set_mode(TelemetryMode::Record);
    qsnc_telemetry::reset();

    let items: Vec<u64> = (0..1000).collect();
    let expected_sum: u64 = items.iter().sum();
    let shard_lens = with_num_threads(4, || {
        par_map_shards(&items, |_, shard| {
            // Per-item increments from worker threads: the worst case for
            // a lossy counter implementation.
            let mut local = 0u64;
            for &v in shard {
                qsnc_telemetry::counter_add("test.parallel.items", 1);
                local += v;
            }
            // Flushed-local pattern the instrumentation itself uses.
            qsnc_telemetry::counter_add("test.parallel.sum", local);
            shard.len()
        })
    });
    let snap = qsnc_telemetry::snapshot();
    qsnc_telemetry::reset();
    qsnc_telemetry::set_mode(TelemetryMode::Off);

    assert_eq!(shard_lens.iter().sum::<usize>(), items.len());
    assert_eq!(snap.counter("test.parallel.items"), Some(items.len() as u64));
    assert_eq!(snap.counter("test.parallel.sum"), Some(expected_sum));
}

#[test]
fn gemm_kernel_counters_survive_threaded_gemm() {
    let _guard = testing::lock();
    qsnc_telemetry::set_mode(TelemetryMode::Record);
    qsnc_telemetry::reset();

    let mut rng = qsnc_tensor::TensorRng::seed(7);
    // Large enough (m·k·n ≥ 32768) that gemm takes its banded parallel path.
    let (m, k, n) = (64usize, 64usize, 16usize);
    let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
    let calls = 5u64;
    with_num_threads(4, || {
        for _ in 0..calls {
            let mut c = vec![0.0f32; m * n];
            qsnc_tensor::gemm(m, k, n, &a, &b, &mut c);
        }
    });
    let snap = qsnc_telemetry::snapshot();
    qsnc_telemetry::reset();
    qsnc_telemetry::set_mode(TelemetryMode::Off);

    assert_eq!(snap.counter("tensor.gemm.calls"), Some(calls));
}
