//! Property-based tests for qsnc-tensor invariants.

use proptest::prelude::*;
use qsnc_tensor::{
    col2im, conv2d, conv2d_direct, im2col, matmul, matmul_naive, pad2d, parallel, softmax_rows,
    transpose, unpad2d, Conv2dSpec, Shape, Tensor,
};

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shape_offset_unravel_roundtrip(dims in proptest::collection::vec(1usize..6, 1..4)) {
        let s = Shape::new(dims);
        for flat in 0..s.len() {
            prop_assert_eq!(s.offset(&s.unravel(flat)), flat);
        }
    }

    #[test]
    fn matmul_matches_naive(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_vec((0..m*k).map(|_| rng.gen_range(-2.0..2.0)).collect(), [m, k]);
        let b = Tensor::from_vec((0..k*n).map(|_| rng.gen_range(-2.0..2.0)).collect(), [k, n]);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        for (x, y) in fast.iter().zip(slow.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn parallel_matmul_bit_identical_to_naive(
        // 0 and 1 are in range: empty products and single rows/cols must
        // agree too, and a thread count above `m` must not misbehave.
        m in 0usize..40, k in 0usize..40, n in 0usize..40,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_vec((0..m*k).map(|_| rng.gen_range(-2.0..2.0)).collect(), [m, k]);
        let b = Tensor::from_vec((0..k*n).map(|_| rng.gen_range(-2.0..2.0)).collect(), [k, n]);
        let oracle = matmul_naive(&a, &b);
        let cpus = std::thread::available_parallelism().map_or(4, |p| p.get());
        for threads in [1, 2, cpus] {
            let fast = parallel::with_num_threads(threads, || matmul(&a, &b));
            prop_assert_eq!(fast.dims(), oracle.dims());
            for (x, y) in fast.iter().zip(oracle.iter()) {
                // Bit-for-bit: the blocked parallel GEMM accumulates every
                // output element in the same ascending-k order as the naive
                // triple loop, at any thread count.
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "threads={} m={} k={} n={}: {} vs {}", threads, m, k, n, x, y,
                );
            }
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut gen = |len: usize, d: [usize; 2]| {
            Tensor::from_vec((0..len).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>(), d)
        };
        let a = gen(m*k, [m, k]);
        let b = gen(k*n, [k, n]);
        let c = gen(k*n, [k, n]);
        let lhs = matmul(&a, &(&b + &c));
        let rhs = &matmul(&a, &b) + &matmul(&a, &c);
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_is_involution(m in 1usize..10, n in 1usize..10, data_seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(data_seed);
        let a = Tensor::from_vec((0..m*n).map(|_| rng.gen::<f32>()).collect(), [m, n]);
        prop_assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn pad_unpad_roundtrip(
        n in 1usize..3, c in 1usize..3, h in 1usize..6, w in 1usize..6,
        pad in 0usize..3, seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::from_vec((0..n*c*h*w).map(|_| rng.gen::<f32>()).collect(), [n, c, h, w]);
        prop_assert_eq!(unpad2d(&pad2d(&x, pad), pad), x);
    }

    #[test]
    fn conv2d_gemm_matches_direct(
        n in 1usize..3, c in 1usize..3, hw in 4usize..8,
        f in 1usize..4, k in 1usize..4, pad in 0usize..2,
        seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::from_vec(
            (0..n*c*hw*hw).map(|_| rng.gen_range(-1.0..1.0)).collect(), [n, c, hw, hw]);
        let wt = Tensor::from_vec(
            (0..f*c*k*k).map(|_| rng.gen_range(-1.0..1.0)).collect(), [f, c, k, k]);
        let spec = Conv2dSpec::new(k, 1, pad);
        let fast = conv2d(&x, &wt, None, spec);
        let slow = conv2d_direct(&x, &wt, None, spec);
        prop_assert_eq!(fast.dims(), slow.dims());
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        n in 1usize..3, c in 1usize..3, hw in 4usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let spec = Conv2dSpec::new(k, stride, pad);
        let x = Tensor::from_vec(
            (0..n*c*hw*hw).map(|_| rng.gen_range(-1.0..1.0)).collect(), [n, c, hw, hw]);
        let cols = im2col(&x, spec);
        let y = Tensor::from_vec(
            (0..cols.len()).map(|_| rng.gen_range(-1.0..1.0)).collect(), cols.dims());
        let lhs: f32 = cols.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, n, c, hw, hw, spec);
        let rhs: f32 = x.iter().zip(back.iter()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn softmax_rows_sum_to_one(rows in 1usize..6, cols in 1usize..8, data in tensor_strategy(48)) {
        let need = rows * cols;
        prop_assume!(need <= data.len());
        let t = Tensor::from_vec(data[..need].to_vec(), [rows, cols]);
        let s = softmax_rows(&t);
        for r in 0..rows {
            let sum: f32 = s.as_slice()[r*cols..(r+1)*cols].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.as_slice()[r*cols..(r+1)*cols].iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn reshape_preserves_sum(data in tensor_strategy(24)) {
        let t = Tensor::from_vec(data, [2, 3, 4]);
        let r = t.reshape([4, 6]);
        prop_assert_eq!(t.sum(), r.sum());
    }

    #[test]
    fn histogram_total_equals_len(data in tensor_strategy(32), bins in 1usize..10) {
        let t = Tensor::from_slice(&data);
        let h = t.histogram(-10.0, 10.0, bins);
        prop_assert_eq!(h.iter().sum::<usize>(), t.len());
    }
}
