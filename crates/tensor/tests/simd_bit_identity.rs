//! Bit-identity of every SIMD micro-kernel against the scalar serial oracle.
//!
//! The SIMD dispatch contract is absolute: whatever [`SimdLevel`] resolves —
//! forced scalar, SSE2 baseline, or AVX2 — the integer GEMMs produce the
//! same `i32` words and the f32 GEMM the same bit patterns, at any thread
//! count. These properties drive adversarial shapes (0, 1, and
//! non-multiples of the 8/16-lane widths), operands at the i8 coding
//! extremes ±127, spike counts at the saturation ceiling 255, counts past
//! `i16::MAX` (exercising the widening fallback), and deliberately
//! unaligned subslices, and pin every available level against a scalar
//! single-threaded run of the same entry point.

use proptest::prelude::*;
use qsnc_tensor::{
    gemm, gemm_serial, igemm, igemm_conv, igemm_wx, parallel, simd, Conv2dSpec, PackedCodes,
    SimdLevel,
};
use rand::{Rng, SeedableRng};

/// SIMD levels above scalar that this machine can actually execute.
fn hw_levels() -> Vec<SimdLevel> {
    let top = simd::detected_simd();
    [SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| l <= top)
        .collect()
}

/// Spike-count matrix in `0..=255` with the extremes forced into the
/// leading slots, so every run covers the saturation ceiling and zero.
fn counts(len: usize, rng: &mut rand::rngs::StdRng) -> Vec<i32> {
    let mut v: Vec<i32> = (0..len).map(|_| rng.gen_range(0..=255)).collect();
    if len > 0 {
        v[0] = 255;
    }
    if len > 1 {
        v[1] = 0;
    }
    v
}

/// Weight codes in `-127..=127` with both extremes forced in.
fn codes(len: usize, rng: &mut rand::rngs::StdRng) -> Vec<i32> {
    let mut v: Vec<i32> = (0..len).map(|_| rng.gen_range(-127..=127)).collect();
    if len > 0 {
        v[0] = 127;
    }
    if len > 1 {
        v[1] = -127;
    }
    v
}

/// Copies `data` into a fresh buffer at byte offset `1 × size_of::<T>()`
/// from the allocation start, returning the buffer; slicing `[1..]` yields
/// a view that is guaranteed not to share the Vec's natural alignment
/// phase, so the kernels' unaligned loads/stores are actually exercised.
fn offset_copy<T: Copy + Default>(data: &[T]) -> Vec<T> {
    let mut buf = vec![T::default(); data.len() + 1];
    buf[1..].copy_from_slice(data);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn igemm_matches_scalar_at_every_level_and_thread_count(
        // Spans 0, 1, and non-multiples of the 8- and 16-lane widths.
        m in 0usize..35, k in 0usize..35, n in 0usize..19,
        seed in 0u64..10_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = counts(m * k, &mut rng);
        let w = codes(n * k, &mut rng);
        let packed = PackedCodes::try_pack(&w, n, k).expect("codes fit i8");

        let mut oracle = vec![0i32; m * n];
        simd::with_simd_level(SimdLevel::Scalar, || {
            parallel::with_num_threads(1, || igemm(m, k, n, &a, &packed, &mut oracle));
        });

        for level in hw_levels() {
            for threads in [1usize, 4] {
                let mut c = vec![0i32; m * n];
                simd::with_simd_level(level, || {
                    parallel::with_num_threads(threads, || {
                        igemm(m, k, n, &a, &packed, &mut c)
                    });
                });
                prop_assert_eq!(
                    &c, &oracle,
                    "igemm diverged at {:?} x {} threads (m={} k={} n={})",
                    level, threads, m, k, n
                );
            }
        }
    }

    #[test]
    fn igemm_wx_matches_scalar_at_every_level_and_thread_count(
        out_dim in 0usize..19, k in 0usize..35, pix in 0usize..35,
        seed in 0u64..10_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = counts(k * pix, &mut rng);
        let w = codes(out_dim * k, &mut rng);
        let packed = PackedCodes::try_pack(&w, out_dim, k).expect("codes fit i8");

        let mut oracle = vec![0i32; out_dim * pix];
        simd::with_simd_level(SimdLevel::Scalar, || {
            parallel::with_num_threads(1, || {
                igemm_wx(out_dim, k, pix, &packed, &x, &mut oracle)
            });
        });

        for level in hw_levels() {
            for threads in [1usize, 4] {
                let mut c = vec![0i32; out_dim * pix];
                simd::with_simd_level(level, || {
                    parallel::with_num_threads(threads, || {
                        igemm_wx(out_dim, k, pix, &packed, &x, &mut c)
                    });
                });
                prop_assert_eq!(
                    &c, &oracle,
                    "igemm_wx diverged at {:?} x {} threads (out={} k={} pix={})",
                    level, threads, out_dim, k, pix
                );
            }
        }
    }

    #[test]
    fn igemm_conv_matches_scalar_at_every_level(
        in_c in 1usize..3, h in 3usize..9, w in 3usize..9,
        kernel in 1usize..4, stride in 1usize..3, padding in 0usize..2,
        out_c in 1usize..9,
        seed in 0u64..10_000,
    ) {
        prop_assume!(h + 2 * padding >= kernel && w + 2 * padding >= kernel);
        let spec = Conv2dSpec::new(kernel, stride, padding);
        let pix = spec.output_size(h) * spec.output_size(w);
        let ckk = in_c * kernel * kernel;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let src = counts(in_c * h * w, &mut rng);
        let wcodes = codes(out_c * ckk, &mut rng);
        let packed = PackedCodes::try_pack(&wcodes, out_c, ckk).expect("codes fit i8");

        let mut oracle = vec![0i32; out_c * pix];
        simd::with_simd_level(SimdLevel::Scalar, || {
            parallel::with_num_threads(1, || {
                igemm_conv(&src, in_c, (h, w), spec, &packed, &mut oracle)
            });
        });

        for level in hw_levels() {
            for threads in [1usize, 4] {
                let mut c = vec![0i32; out_c * pix];
                simd::with_simd_level(level, || {
                    parallel::with_num_threads(threads, || {
                        igemm_conv(&src, in_c, (h, w), spec, &packed, &mut c)
                    });
                });
                prop_assert_eq!(
                    &c, &oracle,
                    "igemm_conv diverged at {:?} x {} threads ({}x{}x{} k{} s{} p{})",
                    level, threads, in_c, h, w, kernel, stride, padding
                );
            }
        }
    }

    #[test]
    fn counts_past_i16_fall_back_bit_identically(
        // Values beyond i16::MAX cannot take the widened SIMD path; the
        // kernels must detect that per call and the scalar fallback must
        // agree with the forced-scalar oracle exactly.
        m in 1usize..8, k in 1usize..8, n in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a: Vec<i32> = (0..m * k).map(|_| rng.gen_range(0..=40_000)).collect();
        a[0] = 40_000; // definitely > i16::MAX
        let w = codes(n * k, &mut rng);
        let packed = PackedCodes::try_pack(&w, n, k).expect("codes fit i8");

        let mut oracle = vec![0i32; m * n];
        simd::with_simd_level(SimdLevel::Scalar, || {
            igemm(m, k, n, &a, &packed, &mut oracle)
        });
        for level in hw_levels() {
            let mut c = vec![0i32; m * n];
            simd::with_simd_level(level, || igemm(m, k, n, &a, &packed, &mut c));
            prop_assert_eq!(&c, &oracle, "i16 fallback diverged at {:?}", level);
        }
    }

    #[test]
    fn unaligned_subslices_are_bit_identical(
        m in 1usize..20, k in 1usize..40, n in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = counts(m * k, &mut rng);
        let w = codes(n * k, &mut rng);
        let packed = PackedCodes::try_pack(&w, n, k).expect("codes fit i8");

        let mut oracle = vec![0i32; m * n];
        simd::with_simd_level(SimdLevel::Scalar, || {
            igemm(m, k, n, &a, &packed, &mut oracle)
        });

        // Shift the count matrix and the output off the Vec's natural
        // alignment: the kernels take arbitrary slices and must not assume
        // 16/32-byte alignment anywhere.
        let a_buf = offset_copy(&a);
        for level in hw_levels() {
            let mut c_buf = vec![0i32; m * n + 1];
            simd::with_simd_level(level, || {
                igemm(m, k, n, &a_buf[1..], &packed, &mut c_buf[1..])
            });
            prop_assert_eq!(&c_buf[1..], &oracle[..], "unaligned igemm diverged at {:?}", level);
        }
    }

    #[test]
    fn f32_gemm_is_bitwise_identical_across_levels_and_threads(
        m in 0usize..22, k in 0usize..22, n in 0usize..22,
        seed in 0u64..10_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();

        let mut oracle = vec![0.0f32; m * n];
        simd::with_simd_level(SimdLevel::Scalar, || {
            parallel::with_num_threads(1, || gemm(m, k, n, &a, &b, &mut oracle));
        });

        for level in hw_levels() {
            for threads in [1usize, 3] {
                let mut c = vec![0.0f32; m * n];
                simd::with_simd_level(level, || {
                    parallel::with_num_threads(threads, || gemm(m, k, n, &a, &b, &mut c));
                });
                for (i, (&x, &y)) in c.iter().zip(oracle.iter()).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "gemm[{}] diverged at {:?} x {} threads: {} vs {}",
                        i, level, threads, x, y
                    );
                }
            }
            // The serial entry point shares the same micro-kernels.
            let mut c = vec![0.0f32; m * n];
            simd::with_simd_level(level, || gemm_serial(m, k, n, &a, &b, &mut c));
            for (&x, &y) in c.iter().zip(oracle.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

/// Deterministic spot check that the AVX2/SSE2 conv path really is the
/// im2row lowering of the same arithmetic: an asymmetric LeNet-like shape,
/// accumulation into a non-zero output (the GEMMs add into `c`).
#[test]
fn conv_simd_accumulates_like_scalar() {
    let (in_c, h, w, out_c) = (3usize, 12usize, 10usize, 16usize);
    let spec = Conv2dSpec::new(5, 1, 2);
    let pix = spec.output_size(h) * spec.output_size(w);
    let ckk = in_c * spec.kernel * spec.kernel;

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let src = counts(in_c * h * w, &mut rng);
    let wcodes = codes(out_c * ckk, &mut rng);
    let packed = PackedCodes::try_pack(&wcodes, out_c, ckk).expect("codes fit i8");

    // Non-zero starting accumulator: both paths must add, not overwrite.
    let bias: Vec<i32> = (0..out_c * pix).map(|i| (i as i32 % 97) - 48).collect();

    let mut oracle = bias.clone();
    simd::with_simd_level(SimdLevel::Scalar, || {
        igemm_conv(&src, in_c, (h, w), spec, &packed, &mut oracle)
    });
    for level in hw_levels() {
        let mut c = bias.clone();
        simd::with_simd_level(level, || {
            igemm_conv(&src, in_c, (h, w), spec, &packed, &mut c)
        });
        assert_eq!(c, oracle, "accumulating conv diverged at {level:?}");
    }
}
