//! Convolution lowering: zero padding, im2col / col2im, and a direct
//! reference convolution.
//!
//! Layers in `qsnc-nn` lower convolution to GEMM through [`im2col`]; the
//! direct [`conv2d_direct`] implementation stays as the oracle the tests
//! compare against, and as the form the crossbar mapper mirrors (each filter
//! becomes one crossbar column over an im2col'd input vector).
//!
//! Two paths here parallelize over the [`crate::parallel`] workers:
//! [`im2col`] partitions the rows of the column matrix (each row is filled
//! by exactly one thread), and [`conv2d`] partitions the batch, giving each
//! worker a contiguous run of images whose columns it lowers and multiplies
//! directly into that image's slice of the output — which also removes the
//! `[f, n, ·]` → `[n, f, ·]` reorder pass the batched lowering needed. Both
//! are pure scatters into disjoint output regions, so results do not depend
//! on the thread count.

use crate::linalg::gemm_serial;
use crate::parallel;
use crate::tensor::Tensor;

/// Spatial geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Conv2dSpec {
    /// Kernel height and width (square kernels only, matching the paper).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Conv2dSpec { kernel, stride, padding }
    }

    /// Output spatial size for an input of extent `input`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the padded input.
    pub fn output_size(&self, input: usize) -> usize {
        let padded = input + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "kernel {} larger than padded input {}",
            self.kernel,
            padded
        );
        (padded - self.kernel) / self.stride + 1
    }
}

/// Pads a `[n, c, h, w]` tensor with `pad` zeros on each spatial border.
///
/// # Panics
///
/// Panics if `x` is not rank 4.
pub fn pad2d(x: &Tensor, pad: usize) -> Tensor {
    assert_eq!(x.shape().rank(), 4, "pad2d requires [n,c,h,w], got {}", x.shape());
    if pad == 0 {
        return x.clone();
    }
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (hp, wp) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros([n, c, hp, wp]);
    let src = x.as_slice();
    let dst = out.as_mut_slice();
    for in_ in 0..n {
        for ic in 0..c {
            for ih in 0..h {
                let src_off = ((in_ * c + ic) * h + ih) * w;
                let dst_off = ((in_ * c + ic) * hp + ih + pad) * wp + pad;
                dst[dst_off..dst_off + w].copy_from_slice(&src[src_off..src_off + w]);
            }
        }
    }
    out
}

/// Removes `pad` elements from each spatial border of a `[n, c, h, w]` tensor.
///
/// Inverse of [`pad2d`] for the interior region.
///
/// # Panics
///
/// Panics if `x` is not rank 4 or the padded extent is too small.
pub fn unpad2d(x: &Tensor, pad: usize) -> Tensor {
    assert_eq!(x.shape().rank(), 4, "unpad2d requires [n,c,h,w]");
    if pad == 0 {
        return x.clone();
    }
    let (n, c, hp, wp) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    assert!(hp > 2 * pad && wp > 2 * pad, "padding larger than tensor");
    let (h, w) = (hp - 2 * pad, wp - 2 * pad);
    let mut out = Tensor::zeros([n, c, h, w]);
    let src = x.as_slice();
    let dst = out.as_mut_slice();
    for in_ in 0..n {
        for ic in 0..c {
            for ih in 0..h {
                let src_off = ((in_ * c + ic) * hp + ih + pad) * wp + pad;
                let dst_off = ((in_ * c + ic) * h + ih) * w;
                dst[dst_off..dst_off + w].copy_from_slice(&src[src_off..src_off + w]);
            }
        }
    }
    out
}

/// Lowers a `[n, c, h, w]` input to a `[c·k·k, n·oh·ow]` column matrix.
///
/// Column `j` holds the receptive field of output pixel `j` (outputs ordered
/// `n`-major, then row-major over the output map), so a convolution becomes
/// `W[f, c·k·k] · cols`.
///
/// # Panics
///
/// Panics if `x` is not rank 4 or the kernel does not fit.
pub fn im2col(x: &Tensor, spec: Conv2dSpec) -> Tensor {
    assert_eq!(x.shape().rank(), 4, "im2col requires [n,c,h,w], got {}", x.shape());
    let padded = pad2d(x, spec.padding);
    let (n, c, hp, wp) = (
        padded.dims()[0],
        padded.dims()[1],
        padded.dims()[2],
        padded.dims()[3],
    );
    let k = spec.kernel;
    let oh = spec.output_size(x.dims()[2]);
    let ow = spec.output_size(x.dims()[3]);
    let rows = c * k * k;
    let cols_n = n * oh * ow;
    let mut cols = vec![0.0f32; rows * cols_n];
    let src = padded.as_slice();

    // Each row of the column matrix is one (channel, ky, kx) tap, filled by
    // exactly one worker — a pure scatter, so banding cannot change results.
    parallel::par_bands_mut(&mut cols, rows, cols_n, |row0, nrows, band| {
        for r in 0..nrows {
            let row = row0 + r;
            let ic = row / (k * k);
            let ky = (row / k) % k;
            let kx = row % k;
            let out_row = &mut band[r * cols_n..(r + 1) * cols_n];
            for in_ in 0..n {
                for oy in 0..oh {
                    let src_off = ((in_ * c + ic) * hp + oy * spec.stride + ky) * wp + kx;
                    let dst_off = (in_ * oh + oy) * ow;
                    for ox in 0..ow {
                        out_row[dst_off + ox] = src[src_off + ox * spec.stride];
                    }
                }
            }
        }
    });
    Tensor::from_vec(cols, [rows, cols_n])
}

/// Lowers one already-padded image `[c, hp, wp]` to `[c·k·k, oh·ow]` columns.
/// `(hp, wp)` is the padded input size, `(oh, ow)` the output map size.
fn im2col_image(
    src: &[f32],
    c: usize,
    (hp, wp): (usize, usize),
    (oh, ow): (usize, usize),
    spec: Conv2dSpec,
    cols: &mut [f32],
) {
    let k = spec.kernel;
    let pix = oh * ow;
    for ic in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic * k + ky) * k + kx;
                for oy in 0..oh {
                    let src_off = (ic * hp + oy * spec.stride + ky) * wp + kx;
                    let dst_off = row * pix + oy * ow;
                    for ox in 0..ow {
                        cols[dst_off + ox] = src[src_off + ox * spec.stride];
                    }
                }
            }
        }
    }
}

/// Scatters a `[c·k·k, n·oh·ow]` column matrix back to a `[n, c, h, w]`
/// image, accumulating overlaps. Adjoint of [`im2col`]; used by the
/// convolution backward pass.
///
/// # Panics
///
/// Panics if `cols` is not rank 2 or its shape disagrees with the geometry.
pub fn col2im(
    cols: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
) -> Tensor {
    assert_eq!(cols.shape().rank(), 2, "col2im requires rank-2 columns");
    let k = spec.kernel;
    let oh = spec.output_size(h);
    let ow = spec.output_size(w);
    assert_eq!(cols.dims()[0], c * k * k, "col2im row count mismatch");
    assert_eq!(cols.dims()[1], n * oh * ow, "col2im column count mismatch");

    let (hp, wp) = (h + 2 * spec.padding, w + 2 * spec.padding);
    let mut padded = vec![0.0f32; n * c * hp * wp];
    let src = cols.as_slice();
    let cols_n = n * oh * ow;

    for in_ in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let col = (in_ * oh + oy) * ow + ox;
                let base_y = oy * spec.stride;
                let base_x = ox * spec.stride;
                for ic in 0..c {
                    for ky in 0..k {
                        let dst_off = ((in_ * c + ic) * hp + base_y + ky) * wp + base_x;
                        for kx in 0..k {
                            let row = (ic * k + ky) * k + kx;
                            padded[dst_off + kx] += src[row * cols_n + col];
                        }
                    }
                }
            }
        }
    }
    let padded_t = Tensor::from_vec(padded, [n, c, hp, wp]);
    unpad2d(&padded_t, spec.padding)
}

/// Convolves `x` `[n, c, h, w]` with filters `w` `[f, c, k, k]` via
/// im2col + GEMM, adding per-filter `bias` `[f]` if provided.
///
/// Returns `[n, f, oh, ow]`.
///
/// The batch is partitioned across the [`crate::parallel`] workers: each
/// worker lowers its images to columns and multiplies straight into that
/// image's `[f, oh·ow]` slice of the output, which is both the parallel axis
/// and what lets this path skip the `[f, n, ·]` → `[n, f, ·]` reorder the
/// batched lowering required. Per-output-element accumulation order matches
/// the batched form, so results are bit-identical at any thread count.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
    assert_eq!(x.shape().rank(), 4, "conv2d input must be [n,c,h,w]");
    assert_eq!(weight.shape().rank(), 4, "conv2d weight must be [f,c,k,k]");
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (f, wc, k, k2) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    assert_eq!(c, wc, "conv2d channel mismatch: input {c}, weight {wc}");
    assert_eq!(k, k2, "conv2d kernels must be square");
    assert_eq!(k, spec.kernel, "spec kernel disagrees with weight");

    let oh = spec.output_size(h);
    let ow = spec.output_size(w);
    let padded = pad2d(x, spec.padding);
    let (hp, wp) = (padded.dims()[2], padded.dims()[3]);
    let ckk = c * k * k;
    let pix = oh * ow;
    let src = padded.as_slice();
    let ws = weight.as_slice();
    let bs = bias.map(Tensor::as_slice);

    let mut out = vec![0.0f32; n * f * pix];
    parallel::par_bands_mut(&mut out, n, f * pix, |img0, imgs, chunk| {
        // Column buffer from the thread-local scratch arena, reused across
        // this worker's images (fully overwritten by each lowering) and —
        // on the serial path, where the thread persists — across calls.
        let mut cols = crate::scratch::take_f32(ckk * pix);
        for i in 0..imgs {
            let img_src = &src[(img0 + i) * c * hp * wp..(img0 + i + 1) * c * hp * wp];
            im2col_image(img_src, c, (hp, wp), (oh, ow), spec, &mut cols);
            let out_img = &mut chunk[i * f * pix..(i + 1) * f * pix];
            // [f, c·k·k] × [c·k·k, oh·ow] → [f, oh·ow], already image-major.
            gemm_serial(f, ckk, pix, ws, &cols, out_img);
            if let Some(b) = bs {
                for fi in 0..f {
                    let bv = b[fi];
                    for v in &mut out_img[fi * pix..(fi + 1) * pix] {
                        *v += bv;
                    }
                }
            }
        }
        crate::scratch::put_f32(cols);
    });
    Tensor::from_vec(out, [n, f, oh, ow])
}

/// Direct (nested-loop) convolution; reference oracle for [`conv2d`].
///
/// # Panics
///
/// Panics under the same conditions as [`conv2d`].
pub fn conv2d_direct(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Tensor {
    assert_eq!(x.shape().rank(), 4);
    assert_eq!(weight.shape().rank(), 4);
    let padded = pad2d(x, spec.padding);
    let (n, c, hp, wp) = (
        padded.dims()[0],
        padded.dims()[1],
        padded.dims()[2],
        padded.dims()[3],
    );
    let f = weight.dims()[0];
    let k = spec.kernel;
    let oh = spec.output_size(x.dims()[2]);
    let ow = spec.output_size(x.dims()[3]);
    let xs = padded.as_slice();
    let ws = weight.as_slice();
    let mut out = Tensor::zeros([n, f, oh, ow]);
    let os = out.as_mut_slice();
    for in_ in 0..n {
        for fi in 0..f {
            let b = bias.map_or(0.0, |t| t.as_slice()[fi]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ic in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * spec.stride + ky;
                                let ix = ox * spec.stride + kx;
                                acc += xs[((in_ * c + ic) * hp + iy) * wp + ix]
                                    * ws[((fi * c + ic) * k + ky) * k + kx];
                            }
                        }
                    }
                    os[((in_ * f + fi) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let len: usize = dims.iter().product();
        Tensor::from_vec((0..len).map(|_| rng.gen_range(-1.0..1.0)).collect(), dims)
    }

    #[test]
    fn spec_output_size() {
        let s = Conv2dSpec::new(3, 1, 1);
        assert_eq!(s.output_size(8), 8);
        let s = Conv2dSpec::new(5, 1, 0);
        assert_eq!(s.output_size(28), 24);
        let s = Conv2dSpec::new(2, 2, 0);
        assert_eq!(s.output_size(8), 4);
    }

    #[test]
    #[should_panic(expected = "kernel must be positive")]
    fn zero_kernel_panics() {
        Conv2dSpec::new(0, 1, 0);
    }

    #[test]
    fn pad_unpad_round_trip() {
        let x = rand_tensor(&[2, 3, 4, 5], 1);
        let p = pad2d(&x, 2);
        assert_eq!(p.dims(), &[2, 3, 8, 9]);
        assert_eq!(unpad2d(&p, 2), x);
        // Border must be zero.
        assert_eq!(p.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(p.at(&[1, 2, 7, 8]), 0.0);
    }

    #[test]
    fn im2col_shape_and_content() {
        // 1×1×3×3 input, 2×2 kernel, stride 1, no pad → 4 output pixels.
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), [1, 1, 3, 3]);
        let cols = im2col(&x, Conv2dSpec::new(2, 1, 0));
        assert_eq!(cols.dims(), &[4, 4]);
        // First column = top-left window [1,2,4,5].
        assert_eq!(cols.at(&[0, 0]), 1.0);
        assert_eq!(cols.at(&[1, 0]), 2.0);
        assert_eq!(cols.at(&[2, 0]), 4.0);
        assert_eq!(cols.at(&[3, 0]), 5.0);
        // Last column = bottom-right window [5,6,8,9].
        assert_eq!(cols.at(&[0, 3]), 5.0);
        assert_eq!(cols.at(&[3, 3]), 9.0);
    }

    #[test]
    fn conv2d_matches_direct() {
        for &(n, c, h, w, f, k, stride, pad) in &[
            (1, 1, 5, 5, 1, 3, 1, 0),
            (2, 3, 8, 8, 4, 3, 1, 1),
            (1, 2, 7, 9, 3, 5, 2, 2),
            (3, 4, 6, 6, 2, 1, 1, 0),
        ] {
            let x = rand_tensor(&[n, c, h, w], 11);
            let wt = rand_tensor(&[f, c, k, k], 13);
            let b = rand_tensor(&[f], 17);
            let spec = Conv2dSpec::new(k, stride, pad);
            let fast = conv2d(&x, &wt, Some(&b), spec);
            let slow = conv2d_direct(&x, &wt, Some(&b), spec);
            assert_eq!(fast.dims(), slow.dims());
            for (a, bv) in fast.iter().zip(slow.iter()) {
                assert!((a - bv).abs() < 1e-4, "{a} vs {bv}");
            }
        }
    }

    #[test]
    fn conv2d_known_values() {
        // Single 2×2 averaging-ish filter over a 2×2 input.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]);
        let w = Tensor::ones([1, 1, 2, 2]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(2, 1, 0));
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.as_slice()[0], 10.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property the backward pass relies on.
        let spec = Conv2dSpec::new(3, 2, 1);
        let (n, c, h, w) = (2, 2, 6, 5);
        let x = rand_tensor(&[n, c, h, w], 3);
        let cols = im2col(&x, spec);
        let y = rand_tensor(cols.dims(), 5);
        let lhs: f32 = cols.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, n, c, h, w, spec);
        let rhs: f32 = x.iter().zip(back.iter()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
