//! Tensor shapes and row-major index arithmetic.

use std::fmt;

/// The shape of a tensor: an ordered list of dimension sizes.
///
/// Shapes are stored densely and indexed row-major (the last dimension is
/// contiguous). A scalar has an empty dimension list and one element.
///
/// # Examples
///
/// ```
/// use qsnc_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` if the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} of size {d}");
            off += i * strides[axis];
        }
        off
    }

    /// Converts a flat row-major offset back into a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len()`.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        assert!(offset < self.len().max(1), "offset {offset} out of bounds");
        let mut idx = vec![0usize; self.dims.len()];
        for axis in (0..self.dims.len()).rev() {
            idx[axis] = offset % self.dims[axis];
            offset /= self.dims[axis];
        }
        idx
    }

    /// Returns `true` if `self` and `other` describe the same element count,
    /// allowing reshape between them.
    pub fn same_len(&self, other: &Shape) -> bool {
        self.len() == other.len()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn len_and_rank() {
        let s = Shape::from([4, 5, 6]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.len(), 120);
        assert_eq!(s.dim(1), 5);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::from([7]);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::from([3, 4, 5]);
        for flat in 0..s.len() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        let s = Shape::from([2, 2]);
        s.offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_wrong_rank_panics() {
        let s = Shape::from([2, 2]);
        s.offset(&[0]);
    }

    #[test]
    fn empty_dim_makes_empty_shape() {
        let s = Shape::from([2, 0, 3]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = [1usize, 2].into();
        assert_eq!(a, b);
    }
}
