//! Weight initialization and deterministic random tensors.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random-number source used across qsnc.
///
/// Thin wrapper over a seeded [`StdRng`]; every experiment in the repository
/// threads one of these through so that tables are reproducible run-to-run.
///
/// # Examples
///
/// ```
/// use qsnc_tensor::TensorRng;
///
/// let mut a = TensorRng::seed(42);
/// let mut b = TensorRng::seed(42);
/// assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        TensorRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen_range(lo..hi)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        // Box–Muller keeps us off external distributions and is plenty for
        // weight init and noise injection.
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index bound must be positive");
        self.rng.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.rng.gen::<f32>() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples from any `rand` distribution.
    pub fn sample<D: Distribution<f32>>(&mut self, dist: &D) -> f32 {
        dist.sample(&mut self.rng)
    }

    /// Splits off an independent generator (seeded from this one's stream).
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::seed(self.rng.gen())
    }
}

/// Tensor filled with uniform samples from `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut TensorRng) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.len()).map(|_| rng.uniform(lo, hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Tensor filled with normal samples `N(mean, std²)`.
pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut TensorRng) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.len()).map(|_| rng.normal_with(mean, std)).collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialization for a layer with the given fan-in
/// and fan-out: `U(±sqrt(6 / (fan_in + fan_out)))`.
pub fn xavier_uniform(
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut TensorRng,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// Kaiming/He normal initialization for ReLU networks:
/// `N(0, sqrt(2 / fan_in))`.
pub fn he_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut TensorRng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = TensorRng::seed(123);
        let mut b = TensorRng::seed(123);
        let ta = uniform([100], -1.0, 1.0, &mut a);
        let tb = uniform([100], -1.0, 1.0, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::seed(1);
        let mut b = TensorRng::seed(2);
        assert_ne!(
            uniform([50], 0.0, 1.0, &mut a),
            uniform([50], 0.0, 1.0, &mut b)
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = TensorRng::seed(9);
        let t = uniform([1000], -0.5, 0.5, &mut rng);
        assert!(t.iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = TensorRng::seed(4);
        let t = normal([20000], 1.0, 2.0, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.1, "mean {}", t.mean());
        assert!((t.std() - 2.0).abs() < 0.1, "std {}", t.std());
    }

    #[test]
    fn xavier_bound_is_correct() {
        let mut rng = TensorRng::seed(2);
        let t = xavier_uniform([100, 100], 100, 100, &mut rng);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.abs_max() <= bound);
        assert!(t.abs_max() > bound * 0.5, "suspiciously tight");
    }

    #[test]
    fn he_normal_scale() {
        let mut rng = TensorRng::seed(3);
        let t = he_normal([50000], 50, &mut rng);
        let expected = (2.0f32 / 50.0).sqrt();
        assert!((t.std() - expected).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TensorRng::seed(5);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input ordered");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = TensorRng::seed(7);
        let mut fork = a.fork();
        // The fork should not replay the parent's stream.
        let x = a.uniform(0.0, 1.0);
        let y = fork.uniform(0.0, 1.0);
        assert_ne!(x, y);
    }
}
