//! Dense linear algebra: GEMM, matrix-vector products, and transposes.
//!
//! The blocked GEMM here is the computational core of the whole simulator:
//! convolution lowers to it via im2col, fully connected layers call it
//! directly, and the memristor crossbar model validates against it.

use crate::tensor::Tensor;

/// Cache-blocking tile edge for [`matmul`]. Chosen so three `f32` tiles fit
/// comfortably in L1 (3 · 64² · 4 B = 48 KiB).
const BLOCK: usize = 64;

/// Computes `C = A · B` for row-major matrices.
///
/// `a` must be `[m, k]` and `b` must be `[k, n]`; the result is `[m, n]`.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use qsnc_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
/// assert_eq!(matmul(&a, &id), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2, got {}", a.shape());
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2, got {}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims disagree: {} vs {}", k, k2);

    let mut c = vec![0.0f32; m * n];
    gemm(m, k, n, a.as_slice(), b.as_slice(), &mut c);
    Tensor::from_vec(c, [m, n])
}

/// Raw blocked GEMM on slices: `c[m×n] += a[m×k] · b[k×n]`.
///
/// `c` must be zero-initialized by the caller if a pure product is wanted.
///
/// # Panics
///
/// Panics if slice lengths do not match the stated dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs slice length mismatch");
    assert_eq!(b.len(), k * n, "rhs slice length mismatch");
    assert_eq!(c.len(), m * n, "output slice length mismatch");

    for i0 in (0..m).step_by(BLOCK) {
        let i_end = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k_end = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j_end = (j0 + BLOCK).min(n);
                for i in i0..i_end {
                    for kk in k0..k_end {
                        let aik = a[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + j_end];
                        let crow = &mut c[i * n + j0..i * n + j_end];
                        for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Naive triple-loop matrix product, kept as a reference oracle for tests
/// and benchmarks.
///
/// # Panics
///
/// Panics under the same conditions as [`matmul`].
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2);
    assert_eq!(b.shape().rank(), 2);
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims disagree");
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += av[i * k + kk] * bv[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    Tensor::from_vec(c, [m, n])
}

/// Computes `y = A · x` for a `[m, k]` matrix and length-`k` vector.
///
/// # Panics
///
/// Panics if `a` is not rank 2 or `x` is not rank 1 of matching length.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matvec lhs must be rank 2");
    assert_eq!(x.shape().rank(), 1, "matvec rhs must be rank 1");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    assert_eq!(k, x.dims()[0], "matvec dims disagree");
    let av = a.as_slice();
    let xv = x.as_slice();
    let mut y = vec![0.0f32; m];
    for i in 0..m {
        let row = &av[i * k..(i + 1) * k];
        y[i] = row.iter().zip(xv.iter()).map(|(&a, &b)| a * b).sum();
    }
    Tensor::from_slice(&y)
}

/// Transposes a rank-2 tensor.
///
/// # Panics
///
/// Panics if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "transpose requires rank 2, got {}", a.shape());
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = av[i * n + j];
        }
    }
    Tensor::from_vec(out, [n, m])
}

/// Outer product of two vectors: `[m] ⊗ [n] → [m, n]`.
///
/// # Panics
///
/// Panics if either input is not rank 1.
pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 1, "outer lhs must be rank 1");
    assert_eq!(y.shape().rank(), 1, "outer rhs must be rank 1");
    let (m, n) = (x.dims()[0], y.dims()[0]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] = x.as_slice()[i] * y.as_slice()[j];
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Dot product of two equal-length rank-1 tensors.
///
/// # Panics
///
/// Panics if shapes differ or rank is not 1.
pub fn dot(x: &Tensor, y: &Tensor) -> f32 {
    assert_eq!(x.shape(), y.shape(), "dot shape mismatch");
    assert_eq!(x.shape().rank(), 1, "dot requires rank 1");
    x.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let id = Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            [3, 3],
        );
        assert_eq!(matmul(&a, &id), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_matches_naive_on_odd_sizes() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (65, 17, 33), (70, 70, 70)] {
            let a = Tensor::from_vec((0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect(), [m, k]);
            let b = Tensor::from_vec((0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect(), [k, n]);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            for (x, y) in fast.iter().zip(slow.iter()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn matmul_dim_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let x = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        let y = matvec(&a, &x);
        assert_eq!(y.as_slice(), &[-1.0, 0.5]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]);
        let t = transpose(&a);
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(transpose(&t), a);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
    }

    #[test]
    fn outer_product() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let y = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = outer(&x, &y);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn dot_product() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(dot(&x, &y), 32.0);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let mut c = [10.0, 0.0, 0.0, 10.0];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [12.0, 3.0, 4.0, 15.0]);
    }
}
