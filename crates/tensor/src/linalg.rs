//! Dense linear algebra: GEMM, matrix-vector products, and transposes.
//!
//! The blocked GEMM here is the computational core of the whole simulator:
//! convolution lowers to it via im2col, fully connected layers call it
//! directly, and the memristor crossbar model validates against it.
//!
//! [`gemm`] and [`matmul`] partition output rows across the worker threads
//! configured in [`crate::parallel`]. Each thread runs the same blocked
//! kernel over a disjoint row band, and the kernel's per-element accumulation
//! order (ascending `k`, in ascending blocks) never depends on which band a
//! row lands in — so the parallel product is **bit-identical** to the serial
//! one at every thread count. The `_serial` variants are kept as explicit
//! single-thread oracles for tests and speedup benchmarks.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::parallel;
use crate::simd::{self, SimdLevel};
use crate::tensor::Tensor;

/// Cache-blocking tile edge for [`matmul`] and the integer kernels in
/// [`mod@crate::igemm`]. Chosen so three `f32` tiles fit comfortably in L1
/// (3 · 64² · 4 B = 48 KiB).
pub(crate) const BLOCK: usize = 64;

/// Minimum multiply-accumulate count (`m·k·n`) before [`gemm`] spawns
/// threads; below this the spawn/join overhead outweighs the work.
const GEMM_PAR_MIN_FLOPS: usize = 32 * 1024;

/// Inner-loop strategy for [`gemm`], set process-wide with
/// [`set_gemm_kernel`].
///
/// The quantized networks this simulator runs produce activation matrices
/// that are often mostly zero (ReLU outputs under low-bit quantization), so
/// skipping `a[i,k] == 0` terms can win large factors — but on dense inputs
/// the extra branch costs ~10-20%. `Auto` samples the left operand per call
/// and picks accordingly; see `benches/gemm.rs` for the measured tradeoff.
///
/// Both kernels produce bit-identical results whenever the output starts
/// zero-initialized or non-negatively signed: skipping a term only elides
/// `acc += 0.0 * b`, which cannot change `acc` except for flipping the sign
/// of an exact `-0.0` accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmKernel {
    /// Sample `a` each call: use `SkipZeros` when ≥ 30% of sampled entries
    /// are zero, `Dense` otherwise. The default.
    Auto,
    /// Unconditional fused multiply-add inner loop.
    Dense,
    /// Skip inner-loop iterations where `a[i, k] == 0`.
    SkipZeros,
}

/// Process-wide kernel override: 0 = Auto, 1 = Dense, 2 = SkipZeros,
/// [`KERNEL_UNSET`] = defer to the `QSNC_GEMM_KERNEL` environment default.
static GEMM_KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNSET);

/// Sentinel meaning "no [`set_gemm_kernel`] call yet".
const KERNEL_UNSET: u8 = u8::MAX;

/// Serializes tests (here and in [`mod@crate::igemm`]) that mutate the
/// process-wide kernel override, and lets them restore the unset sentinel —
/// [`set_gemm_kernel`] can only store concrete kernels, but tests must put
/// the env-deferral state back so the rest of the suite sees whatever
/// `QSNC_GEMM_KERNEL` the process was launched with.
#[cfg(test)]
pub(crate) static KERNEL_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
pub(crate) fn reset_gemm_kernel_for_tests() {
    GEMM_KERNEL.store(KERNEL_UNSET, Ordering::Relaxed);
}

/// Default resolved once from `QSNC_GEMM_KERNEL` (mirroring how
/// `QSNC_THREADS` seeds [`crate::parallel`]).
static ENV_KERNEL: OnceLock<GemmKernel> = OnceLock::new();

fn env_kernel() -> GemmKernel {
    *ENV_KERNEL.get_or_init(|| {
        match std::env::var("QSNC_GEMM_KERNEL")
            .map(|v| v.trim().to_ascii_lowercase())
            .as_deref()
        {
            Ok("dense") => GemmKernel::Dense,
            Ok("skipzeros") | Ok("skip_zeros") | Ok("skip-zeros") => GemmKernel::SkipZeros,
            // "auto", unset, or unrecognized: the sampling default.
            _ => GemmKernel::Auto,
        }
    })
}

/// Sets the process-wide [`GemmKernel`] used by [`gemm`], [`matmul`],
/// [`gemm_bt`] and [`mod@crate::igemm`], overriding any `QSNC_GEMM_KERNEL`
/// environment default.
pub fn set_gemm_kernel(kernel: GemmKernel) {
    let v = match kernel {
        GemmKernel::Auto => 0,
        GemmKernel::Dense => 1,
        GemmKernel::SkipZeros => 2,
    };
    GEMM_KERNEL.store(v, Ordering::Relaxed);
}

/// Returns the effective process-wide [`GemmKernel`]: the value from
/// [`set_gemm_kernel`] if one was set, else the `QSNC_GEMM_KERNEL`
/// environment variable (`auto`/`dense`/`skipzeros`, read once per
/// process), else [`GemmKernel::Auto`].
pub fn gemm_kernel() -> GemmKernel {
    match GEMM_KERNEL.load(Ordering::Relaxed) {
        0 => GemmKernel::Auto,
        1 => GemmKernel::Dense,
        2 => GemmKernel::SkipZeros,
        _ => env_kernel(),
    }
}

/// `Auto` heuristic: sample up to 512 evenly strided entries of `a` and
/// report whether at least 30% of them are zero.
fn mostly_zero_impl<T: Copy + PartialEq>(a: &[T], zero: T) -> bool {
    if a.is_empty() {
        return false;
    }
    let step = (a.len() / 512).max(1);
    let mut seen = 0usize;
    let mut zeros = 0usize;
    let mut i = 0;
    while i < a.len() {
        seen += 1;
        if a[i] == zero {
            zeros += 1;
        }
        i += step;
    }
    zeros * 10 >= seen * 3
}

fn mostly_zero(a: &[f32]) -> bool {
    mostly_zero_impl(a, 0.0f32)
}

/// Slots in the per-shape `Auto` decision cache. Collisions just force a
/// resample, so a small direct-mapped table is plenty.
const AUTO_SLOTS: usize = 64;

/// Calls served from a cached `Auto` decision before the shape's left
/// operand is resampled. Kernel choice never affects results (both kernels
/// are result-preserving), so a stale decision costs performance only.
const AUTO_RESAMPLE_PERIOD: u64 = 255;

/// Direct-mapped cache of `Auto` sampling decisions, keyed by call-site
/// shape. Each slot packs `(shape tag | kernel bit | remaining-call count)`
/// into one `u64`, updated with relaxed loads/stores — a racing update
/// merely resamples, it cannot corrupt a decision.
static AUTO_CACHE: [AtomicU64; AUTO_SLOTS] = [const { AtomicU64::new(0) }; AUTO_SLOTS];

/// FNV-1a over the product shape; `tag` separates the f32/i32/i8 call
/// families and `level` the active SIMD tier, so no two (shape, family,
/// ISA) combinations ever share a cache entry — a `QSNC_SIMD` override
/// mid-process (tests mutate it) resolves against fresh slots instead of a
/// stale decision made under another instruction set.
fn shape_hash(m: usize, k: usize, n: usize, tag: u8, level: SimdLevel) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [m as u64, k as u64, n as u64, tag as u64, level as u64] {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Returns the cached `Auto` decision for `hash`, invoking `sample` only
/// when the slot holds a different shape or its resample budget ran out.
fn auto_cached(hash: u64, sample: impl FnOnce() -> bool) -> GemmKernel {
    let slot = &AUTO_CACHE[(hash >> 16) as usize % AUTO_SLOTS];
    // High 48 bits identify the shape; bit 63 is forced so a real tag can
    // never look like the empty slot. Low 16 bits: kernel bit 8, count 0-7.
    let tag = (hash | 1 << 63) & !0xFFFFu64;
    let cur = slot.load(Ordering::Relaxed);
    if cur & !0xFFFF == tag {
        let count = cur & 0xFF;
        if count > 0 {
            slot.store((cur & !0xFFu64) | (count - 1), Ordering::Relaxed);
            return if cur & 0x100 != 0 { GemmKernel::SkipZeros } else { GemmKernel::Dense };
        }
    }
    let skip = sample();
    slot.store(tag | u64::from(skip) << 8 | AUTO_RESAMPLE_PERIOD, Ordering::Relaxed);
    if skip { GemmKernel::SkipZeros } else { GemmKernel::Dense }
}

/// Resolves the effective kernel for an `f32` call of shape `(m, k, n)`
/// with left operand `a`.
///
/// Resolution happens once per [`gemm`] call — never per band — so the
/// choice (and therefore the result) cannot depend on the thread count.
/// Under `Auto` the sampling decision is cached per call-site shape and
/// refreshed every [`AUTO_RESAMPLE_PERIOD`] calls rather than resampled
/// every call.
fn resolve_kernel(m: usize, k: usize, n: usize, a: &[f32], level: SimdLevel) -> GemmKernel {
    let kernel = match gemm_kernel() {
        GemmKernel::Auto => auto_cached(shape_hash(m, k, n, 0, level), || mostly_zero(a)),
        k => k,
    };
    if qsnc_telemetry::enabled() {
        qsnc_telemetry::counter_add("tensor.gemm.calls", 1);
        let name = match kernel {
            GemmKernel::SkipZeros => "tensor.gemm.kernel.skip_zeros",
            _ => "tensor.gemm.kernel.dense",
        };
        qsnc_telemetry::counter_add(name, 1);
    }
    kernel
}

/// Kernel resolution for the integer GEMM in [`mod@crate::igemm`]: same
/// process-wide setting, same per-shape `Auto` cache (tagged separately).
pub(crate) fn resolve_kernel_cached_i32(
    m: usize,
    k: usize,
    n: usize,
    a: &[i32],
    level: SimdLevel,
) -> GemmKernel {
    match gemm_kernel() {
        GemmKernel::Auto => {
            auto_cached(shape_hash(m, k, n, 1, level), || mostly_zero_impl(a, 0i32))
        }
        k => k,
    }
}

/// Kernel resolution for [`crate::igemm::igemm_wx`], where the skippable
/// operand is the packed `i8` weight codes (clustered weights are often
/// sparse). Separate cache tag from the `f32` and `i32` families.
pub(crate) fn resolve_kernel_cached_i8(
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    level: SimdLevel,
) -> GemmKernel {
    match gemm_kernel() {
        GemmKernel::Auto => {
            auto_cached(shape_hash(m, k, n, 2, level), || mostly_zero_impl(a, 0i8))
        }
        k => k,
    }
}

/// Blocked GEMM over one row band: `c[mb×n] += a[mb×k] · b[k×n]`.
///
/// Row indices are band-local; because the accumulation order for each
/// output element is ascending `kk` within ascending `k0` blocks regardless
/// of `mb`, running bands separately is bit-identical to one big call.
/// Dense bands at a SIMD `level` above scalar go to the register-tiled
/// [`crate::simd::gemm_tile_f32`] kernel, whose per-element order is the
/// same ascending `k` with separate multiply then add — bit-identical again.
#[allow(clippy::too_many_arguments)] // flat scalars keep the hot band call free of struct plumbing
fn gemm_band(
    kernel: GemmKernel,
    level: SimdLevel,
    mb: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let skip = kernel == GemmKernel::SkipZeros;
    if !skip && level != SimdLevel::Scalar {
        // SAFETY: dense contiguous panels — `a` is `mb×k`, `b` is `k×n`,
        // `c` is `mb×n`, all with stride equal to their row length (lengths
        // asserted by every public caller), and this call owns `c` alone.
        unsafe {
            simd::gemm_tile_f32(level, mb, k, n, a.as_ptr(), k, b.as_ptr(), n, c.as_mut_ptr(), n);
        }
        return;
    }
    for i0 in (0..mb).step_by(BLOCK) {
        let i_end = (i0 + BLOCK).min(mb);
        for k0 in (0..k).step_by(BLOCK) {
            let k_end = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j_end = (j0 + BLOCK).min(n);
                for i in i0..i_end {
                    for kk in k0..k_end {
                        let aik = a[i * k + kk];
                        if skip && aik == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + j_end];
                        let crow = &mut c[i * n + j0..i * n + j_end];
                        for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Computes `C = A · B` for row-major matrices.
///
/// `a` must be `[m, k]` and `b` must be `[k, n]`; the result is `[m, n]`.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use qsnc_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
/// assert_eq!(matmul(&a, &id), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2, got {}", a.shape());
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2, got {}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims disagree: {} vs {}", k, k2);

    let mut c = vec![0.0f32; m * n];
    gemm(m, k, n, a.as_slice(), b.as_slice(), &mut c);
    Tensor::from_vec(c, [m, n])
}

/// Single-threaded [`matmul`]: the reference oracle benches compare the
/// parallel path against.
///
/// # Panics
///
/// Panics under the same conditions as [`matmul`].
pub fn matmul_serial(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2, got {}", a.shape());
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2, got {}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims disagree: {} vs {}", k, k2);

    let mut c = vec![0.0f32; m * n];
    gemm_serial(m, k, n, a.as_slice(), b.as_slice(), &mut c);
    Tensor::from_vec(c, [m, n])
}

/// Raw blocked GEMM on slices: `c[m×n] += a[m×k] · b[k×n]`.
///
/// `c` must be zero-initialized by the caller if a pure product is wanted.
/// Output rows are partitioned across the [`crate::parallel`] worker threads
/// when the product is large enough (`m·k·n ≥ 32768`); the result is
/// bit-identical to [`gemm_serial`] at any thread count.
///
/// # Panics
///
/// Panics if slice lengths do not match the stated dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs slice length mismatch");
    assert_eq!(b.len(), k * n, "rhs slice length mismatch");
    assert_eq!(c.len(), m * n, "output slice length mismatch");

    let level = simd::simd_level();
    let kernel = resolve_kernel(m, k, n, a, level);
    if m * k * n < GEMM_PAR_MIN_FLOPS || parallel::num_threads() == 1 {
        gemm_band(kernel, level, m, k, n, a, b, c);
        return;
    }
    if kernel == GemmKernel::SkipZeros || level == SimdLevel::Scalar {
        if m < 2 {
            gemm_band(kernel, level, m, k, n, a, b, c);
            return;
        }
        parallel::par_bands_mut(c, m, n, |row0, rows, c_band| {
            gemm_band(kernel, level, rows, k, n, &a[row0 * k..(row0 + rows) * k], b, c_band);
        });
        return;
    }
    // Dense SIMD: split the output into a 2-D grid of register-kernel
    // panels. Tile columns are sized so one tile's slice of `b` (`k · tc`
    // floats) stays inside an L2-sized panel; tile rows use the L1 block
    // edge. Whole tiles are stolen off the pool's shared counter, and every
    // output element is owned by exactly one tile.
    let tc = (GEMM_TILE_PANEL / k.max(1)).clamp(BLOCK.min(n.max(1)), n.max(1));
    let tr = BLOCK.min(m.max(1));
    let (tiles_r, tiles_c) = (m.div_ceil(tr), n.div_ceil(tc));
    let base = SyncPtr(c.as_mut_ptr());
    let base = &base;
    parallel::par_tiles(tiles_r, tiles_c, |ti, tj| {
        let (r0, c0) = (ti * tr, tj * tc);
        let (rb, cb) = (tr.min(m - r0), tc.min(n - c0));
        // SAFETY: tile (ti, tj) owns rows r0..r0+rb × cols c0..c0+cb of `c`
        // exclusively (tiles partition the grid; par_tiles hands each cell
        // to exactly one worker), and `a`/`b` are read-only dense panels of
        // asserted length. Strides are the full row lengths `k` and `n`.
        unsafe {
            simd::gemm_tile_f32(
                level,
                rb,
                k,
                cb,
                a.as_ptr().add(r0 * k),
                k,
                b.as_ptr().add(c0),
                n,
                base.0.add(r0 * n + c0),
                n,
            );
        }
    });
}

/// Target `f32` element count for one GEMM tile's slice of the `b` operand
/// (`k · tile_cols`): 64 Ki floats = 256 KiB, an L2-sized panel.
const GEMM_TILE_PANEL: usize = 64 * 1024;

/// Raw output pointer crossing into the tile closure; tiles are disjoint, so
/// concurrent workers never alias an element.
struct SyncPtr<T>(*mut T);
// SAFETY: only disjoint offsets are dereferenced — `par_tiles` gives each
// grid cell to exactly one worker and cells map to disjoint `c` panels.
unsafe impl<T: Send> Sync for SyncPtr<T> {}

/// Single-threaded [`gemm`], kept as the reference oracle for tests and
/// serial-vs-parallel benchmarks. Kernel selection (`Auto` sampling) is
/// shared with [`gemm`], so the two differ only in threading.
///
/// # Panics
///
/// Panics under the same conditions as [`gemm`].
pub fn gemm_serial(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs slice length mismatch");
    assert_eq!(b.len(), k * n, "rhs slice length mismatch");
    assert_eq!(c.len(), m * n, "output slice length mismatch");
    let level = simd::simd_level();
    gemm_band(resolve_kernel(m, k, n, a, level), level, m, k, n, a, b, c);
}

/// One row band of [`gemm_bt`]: `c[mb×n] += a[mb×k] · btᵀ`.
///
/// Each output element starts from its current value and accumulates in
/// ascending `k` — the same per-element order as [`gemm_band`], so the two
/// forms are bit-identical on equal inputs.
fn gemm_bt_band(kernel: GemmKernel, mb: usize, k: usize, n: usize, a: &[f32], bt: &[f32], c: &mut [f32]) {
    let skip = kernel == GemmKernel::SkipZeros;
    for i0 in (0..mb).step_by(BLOCK) {
        let i_end = (i0 + BLOCK).min(mb);
        for j0 in (0..n).step_by(BLOCK) {
            let j_end = (j0 + BLOCK).min(n);
            for i in i0..i_end {
                let arow = &a[i * k..(i + 1) * k];
                for j in j0..j_end {
                    let brow = &bt[j * k..(j + 1) * k];
                    let mut acc = c[i * n + j];
                    if skip {
                        for (&av, &bv) in arow.iter().zip(brow.iter()) {
                            if av != 0.0 {
                                acc += av * bv;
                            }
                        }
                    } else {
                        for (&av, &bv) in arow.iter().zip(brow.iter()) {
                            acc += av * bv;
                        }
                    }
                    c[i * n + j] = acc;
                }
            }
        }
    }
}

/// GEMM against a pre-transposed right operand: `c[m×n] += a[m×k] · btᵀ`
/// where `bt` is `[n, k]` row-major.
///
/// This is the natural product for `Linear` layers, whose weights are
/// stored `[out, in]`: calling this instead of `gemm(a, transpose(w))`
/// skips materializing the transposed copy on every forward pass. Both
/// operands stream row-major through a dot-product kernel, and the
/// per-element accumulation order (ascending `k`) matches [`gemm`] exactly,
/// so the result is **bit-identical** to `gemm(m, k, n, a, transpose(bt))`
/// at any thread count.
///
/// # Panics
///
/// Panics if slice lengths do not match the stated dimensions.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], bt: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs slice length mismatch");
    assert_eq!(bt.len(), n * k, "transposed rhs slice length mismatch");
    assert_eq!(c.len(), m * n, "output slice length mismatch");

    let kernel = resolve_kernel(m, k, n, a, simd::simd_level());
    if m < 2 || m * k * n < GEMM_PAR_MIN_FLOPS || parallel::num_threads() == 1 {
        gemm_bt_band(kernel, m, k, n, a, bt, c);
        return;
    }
    parallel::par_bands_mut(c, m, n, |row0, rows, c_band| {
        gemm_bt_band(kernel, rows, k, n, &a[row0 * k..(row0 + rows) * k], bt, c_band);
    });
}

/// Naive triple-loop matrix product, kept as a reference oracle for tests
/// and benchmarks.
///
/// # Panics
///
/// Panics under the same conditions as [`matmul`].
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2);
    assert_eq!(b.shape().rank(), 2);
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims disagree");
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += av[i * k + kk] * bv[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    Tensor::from_vec(c, [m, n])
}

/// Computes `y = A · x` for a `[m, k]` matrix and length-`k` vector.
///
/// # Panics
///
/// Panics if `a` is not rank 2 or `x` is not rank 1 of matching length.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matvec lhs must be rank 2");
    assert_eq!(x.shape().rank(), 1, "matvec rhs must be rank 1");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    assert_eq!(k, x.dims()[0], "matvec dims disagree");
    let av = a.as_slice();
    let xv = x.as_slice();
    let mut y = vec![0.0f32; m];
    for i in 0..m {
        let row = &av[i * k..(i + 1) * k];
        y[i] = row.iter().zip(xv.iter()).map(|(&a, &b)| a * b).sum();
    }
    Tensor::from_slice(&y)
}

/// Transposes a rank-2 tensor.
///
/// # Panics
///
/// Panics if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "transpose requires rank 2, got {}", a.shape());
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let av = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = av[i * n + j];
        }
    }
    Tensor::from_vec(out, [n, m])
}

/// Outer product of two vectors: `[m] ⊗ [n] → [m, n]`.
///
/// # Panics
///
/// Panics if either input is not rank 1.
pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 1, "outer lhs must be rank 1");
    assert_eq!(y.shape().rank(), 1, "outer rhs must be rank 1");
    let (m, n) = (x.dims()[0], y.dims()[0]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] = x.as_slice()[i] * y.as_slice()[j];
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Dot product of two equal-length rank-1 tensors.
///
/// # Panics
///
/// Panics if shapes differ or rank is not 1.
pub fn dot(x: &Tensor, y: &Tensor) -> f32 {
    assert_eq!(x.shape(), y.shape(), "dot shape mismatch");
    assert_eq!(x.shape().rank(), 1, "dot requires rank 1");
    x.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let id = Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            [3, 3],
        );
        assert_eq!(matmul(&a, &id), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_matches_naive_on_odd_sizes() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (65, 17, 33), (70, 70, 70)] {
            let a = Tensor::from_vec((0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect(), [m, k]);
            let b = Tensor::from_vec((0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect(), [k, n]);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            for (x, y) in fast.iter().zip(slow.iter()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn matmul_dim_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let x = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        let y = matvec(&a, &x);
        assert_eq!(y.as_slice(), &[-1.0, 0.5]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), [2, 3]);
        let t = transpose(&a);
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(transpose(&t), a);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
    }

    #[test]
    fn outer_product() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let y = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = outer(&x, &y);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn dot_product() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(dot(&x, &y), 32.0);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let mut c = [10.0, 0.0, 0.0, 10.0];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [12.0, 3.0, 4.0, 15.0]);
    }

    fn rand_mat(rows: usize, cols: usize, seed: u64, zero_every: usize) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|i| {
                if zero_every > 0 && i % zero_every == 0 {
                    0.0
                } else {
                    rng.gen_range(-1.0f32..1.0)
                }
            })
            .collect();
        Tensor::from_vec(data, [rows, cols])
    }

    #[test]
    fn parallel_gemm_bit_identical_to_serial() {
        // Sizes straddling GEMM_PAR_MIN_FLOPS and the BLOCK edge.
        for &(m, k, n) in &[(2, 64, 256), (65, 65, 65), (128, 32, 100), (1, 300, 300)] {
            let a = rand_mat(m, k, 21, 0);
            let b = rand_mat(k, n, 22, 0);
            let serial = matmul_serial(&a, &b);
            for threads in [1, 2, 3, 8] {
                let par = crate::parallel::with_num_threads(threads, || matmul(&a, &b));
                for (x, y) in par.iter().zip(serial.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "threads={threads} m={m} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn dense_and_skipzero_kernels_agree_bitwise() {
        // Zero-initialized output: skipping 0·b terms cannot change any bit.
        let a = rand_mat(40, 50, 31, 3); // every 3rd entry exactly zero
        let b = rand_mat(50, 60, 32, 0);
        let mut dense = vec![0.0f32; 40 * 60];
        let mut skip = vec![0.0f32; 40 * 60];
        for level in [SimdLevel::Scalar, simd::simd_level()] {
            dense.fill(0.0);
            skip.fill(0.0);
            gemm_band(GemmKernel::Dense, level, 40, 50, 60, a.as_slice(), b.as_slice(), &mut dense);
            gemm_band(
                GemmKernel::SkipZeros,
                level,
                40,
                50,
                60,
                a.as_slice(),
                b.as_slice(),
                &mut skip,
            );
            for (x, y) in dense.iter().zip(skip.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "level={level:?}");
            }
        }
    }

    #[test]
    fn kernel_setting_round_trips_and_auto_samples() {
        // Serialize with the other kernel-mutating tests and start from the
        // unset sentinel: gemm_kernel() must defer to QSNC_GEMM_KERNEL —
        // checked against whatever this test process was launched with so
        // the CI skipzeros leg passes too.
        let _guard = KERNEL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_gemm_kernel_for_tests();
        assert_eq!(gemm_kernel(), env_kernel());
        set_gemm_kernel(GemmKernel::Dense);
        assert_eq!(gemm_kernel(), GemmKernel::Dense);
        set_gemm_kernel(GemmKernel::Auto);
        assert_eq!(gemm_kernel(), GemmKernel::Auto);
        // Restore the "unset" sentinel so other tests see the env default.
        reset_gemm_kernel_for_tests();
        assert_eq!(gemm_kernel(), env_kernel());

        assert!(mostly_zero(&vec![0.0f32; 1000]));
        assert!(!mostly_zero(&vec![1.0f32; 1000]));
        let mixed: Vec<f32> = (0..1000).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        assert!(mostly_zero(&mixed));
        assert!(!mostly_zero(&[]));
    }

    #[test]
    fn auto_cache_reuses_decision_until_period_expires() {
        // A shape no other test uses, so this slot is ours alone.
        let hash = shape_hash(911, 913, 917, 0, SimdLevel::Scalar);
        let mut samples = 0u32;
        let k1 = auto_cached(hash, || {
            samples += 1;
            true
        });
        assert_eq!(k1, GemmKernel::SkipZeros);
        assert_eq!(samples, 1);
        // Served from cache: the closure must not run again, and the cached
        // decision sticks even if a fresh sample would now disagree.
        for _ in 0..AUTO_RESAMPLE_PERIOD {
            let k = auto_cached(hash, || {
                samples += 1;
                false
            });
            assert_eq!(k, GemmKernel::SkipZeros);
        }
        assert_eq!(samples, 1, "cached calls must not resample");
        // Budget exhausted: the next call resamples.
        let k2 = auto_cached(hash, || {
            samples += 1;
            false
        });
        assert_eq!(k2, GemmKernel::Dense);
        assert_eq!(samples, 2);
        // A different shape (even one colliding into the same slot) always
        // resamples on first sight: its tag cannot match the stored one.
        let other = shape_hash(1911, 1913, 1917, 0, SimdLevel::Scalar);
        assert_ne!(other, hash);
        let mut hit = false;
        auto_cached(other, || {
            hit = true;
            true
        });
        assert!(hit, "unseen shape must sample");
    }

    #[test]
    fn auto_cache_is_keyed_on_simd_level() {
        // Same shape, different ISA tier → different cache identity, so a
        // QSNC_SIMD override mid-process can never be served a decision made
        // under another instruction set.
        let shapes = [(2911, 2913, 2917), (77, 401, 93)];
        for &(m, k, n) in &shapes {
            for tag in 0..3u8 {
                let per_level: Vec<u64> =
                    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
                        .iter()
                        .map(|&l| shape_hash(m, k, n, tag, l))
                        .collect();
                assert_ne!(per_level[0], per_level[1], "m={m} tag={tag}");
                assert_ne!(per_level[1], per_level[2], "m={m} tag={tag}");
                assert_ne!(per_level[0], per_level[2], "m={m} tag={tag}");
            }
        }
        // End to end: cache a decision under Scalar, then resolve the same
        // shape under another level — the cached Scalar decision must not be
        // served (the closure runs again for the new key).
        let scalar_hash = shape_hash(2911, 2913, 2917, 0, SimdLevel::Scalar);
        let avx_hash = shape_hash(2911, 2913, 2917, 0, SimdLevel::Avx2);
        let mut samples = 0u32;
        assert_eq!(
            auto_cached(scalar_hash, || {
                samples += 1;
                true
            }),
            GemmKernel::SkipZeros
        );
        assert_eq!(
            auto_cached(avx_hash, || {
                samples += 1;
                false
            }),
            GemmKernel::Dense,
            "a level switch must resample, not reuse the other level's choice"
        );
        assert_eq!(samples, 2);
    }

    #[test]
    fn gemm_bt_bit_identical_to_gemm_with_transpose() {
        for &(m, k, n) in &[(1, 400, 10), (3, 5, 7), (65, 65, 65), (128, 32, 100)] {
            let a = rand_mat(m, k, 41, 3);
            let bt = rand_mat(n, k, 42, 0);
            let b = transpose(&bt);
            let mut via_gemm = vec![0.5f32; m * n];
            let mut via_bt = vec![0.5f32; m * n];
            gemm(m, k, n, a.as_slice(), b.as_slice(), &mut via_gemm);
            gemm_bt(m, k, n, a.as_slice(), bt.as_slice(), &mut via_bt);
            for (x, y) in via_gemm.iter().zip(via_bt.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m} k={k} n={n}");
            }
            // And the parallel split is bit-identical too.
            for threads in [2, 3] {
                let mut par = vec![0.5f32; m * n];
                crate::parallel::with_num_threads(threads, || {
                    gemm_bt(m, k, n, a.as_slice(), bt.as_slice(), &mut par);
                });
                for (x, y) in par.iter().zip(via_bt.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
                }
            }
        }
    }
}
