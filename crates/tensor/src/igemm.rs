//! Integer GEMM for quantized inference: packed `i8` weight codes times
//! `i32` spike counts with `i32` accumulation.
//!
//! A deployed network's weights are integer codes on the clustered grid
//! (`|code| ≤ 2^(N−1)`, Eq. 6) and its signals are `M`-bit spike counts, so
//! the synaptic products need no floating point at all. [`PackedCodes`]
//! stores a layer's code matrix transposed once into the `[in, out]` layout
//! the inner loop streams through, and [`igemm`] runs the same cache-blocked
//! loop nest as the `f32` [`crate::gemm`] — including the zero-skip variant:
//! quantized ReLU activations make the spike-count operand mostly zero, and
//! skipping `a[i,k] == 0` terms is *exactly* result-preserving here (integer
//! adds of zero, no `-0.0` caveat). Kernel selection honours the shared
//! process-wide [`crate::GemmKernel`] setting and the per-shape `Auto`
//! cache in [`crate::linalg`].
//!
//! [`im2row_i32`] lowers an integer image to the row-per-output-pixel
//! matrix `igemm` consumes, folding the zero padding into the lowering so
//! no padded copy of the input is ever materialized.
//!
//! # SIMD fast path
//!
//! When the resolved kernel is dense and [`crate::simd_level`] is above
//! scalar, the micro-kernels in [`crate::simd`] take over; integer
//! accumulation is associative, so every route below is bit-identical to
//! the scalar loop (`tests/simd_bit_identity.rs` property-tests this).
//!
//! - **AVX2, counts fit `i16`** (the steady state — spike counts are
//!   ≤ 255): [`igemm_wx`] packs adjacent `k`-rows of the count matrix into
//!   two-`i16`-per-word pair operands (the range check fused into the same
//!   pass) and runs the `pmaddwd` **axpy** kernel against the weight pair
//!   panel built at pack time ([`PackedCodes`]) — 16 MACs per multiply,
//!   four output rows blocked per sweep of the packed panel, no transpose.
//! - **AVX2, wider counts**: the exact `vpmulld` axpy body instead.
//! - **SSE2** (no packed 32-bit multiply): transpose the counts once into
//!   `i16` pixel rows and run the shared `i16 × i16 → i32` **dot** kernel;
//!   [`igemm`] widens its row-major count operand into the same kernel at
//!   every SIMD level.
//!
//! [`igemm_conv`] picks the conv lowering automatically: `im2col` + the
//! axpy orientation on AVX2 (and for scalar or skip-zeros kernels, which
//! want the zero-skipping row loop), `im2row` + the dot kernel on SSE2
//! when the image fits `i16`.

use crate::conv::Conv2dSpec;
use crate::linalg::{resolve_kernel_cached_i32, resolve_kernel_cached_i8, GemmKernel, BLOCK};
use crate::parallel;
use crate::scratch;
use crate::simd::{self, SimdLevel};

/// A layer's weight codes packed for the integer fast path: `i8` entries in
/// `[in, out]` (transposed) layout, prepared once at compile time.
#[derive(Debug, Clone)]
pub struct PackedCodes {
    in_dim: usize,
    out_dim: usize,
    /// `data[i · out_dim + j]` = code of output `j` from input `i`.
    data: Vec<i8>,
    /// The same codes pre-widened to `i16` in row-major `[out, in]` layout
    /// (`rows16[j · in_dim + i]`) — the panel the SIMD dot kernel streams.
    rows16: Vec<i16>,
    /// Adjacent input pairs packed two-`i16`-per-word in `[out, ceil(in/2)]`
    /// layout (`pairs16[j · kp + kkp]` holds codes `2·kkp` and `2·kkp + 1`
    /// of output `j`, an odd tail padded with zero) — the broadcast operand
    /// of the `pmaddwd` axpy kernel.
    pairs16: Vec<i32>,
}

impl PackedCodes {
    /// Packs a code matrix given in the repo's standard `[out, in]` layout
    /// (as stored by `Conv2d`/`Linear` and produced by weight clustering).
    ///
    /// Returns `None` when any code does not fit in `i8` — possible only at
    /// `N = 8`, whose level bound `2^7 = 128` exceeds `i8::MAX`; callers
    /// fall back to the float path in that case.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != out_dim · in_dim`.
    pub fn try_pack(codes: &[i32], out_dim: usize, in_dim: usize) -> Option<Self> {
        assert_eq!(codes.len(), out_dim * in_dim, "code matrix shape mismatch");
        if codes.iter().any(|&c| i8::try_from(c).is_err()) {
            return None;
        }
        let mut data = vec![0i8; in_dim * out_dim];
        for (j, row) in codes.chunks_exact(in_dim.max(1)).enumerate() {
            for (i, &code) in row.iter().enumerate() {
                data[i * out_dim + j] = code as i8;
            }
        }
        let rows16: Vec<i16> = codes.iter().map(|&c| c as i16).collect();
        let kp = in_dim.div_ceil(2);
        let mut pairs16 = vec![0i32; out_dim * kp];
        for j in 0..out_dim {
            for kkp in 0..kp {
                let w0 = codes[j * in_dim + 2 * kkp] as i16 as u16 as u32;
                let w1 = if 2 * kkp + 1 < in_dim {
                    codes[j * in_dim + 2 * kkp + 1] as i16 as u16 as u32
                } else {
                    0
                };
                pairs16[j * kp + kkp] = (w0 | (w1 << 16)) as i32;
            }
        }
        Some(PackedCodes { in_dim, out_dim, data, rows16, pairs16 })
    }

    /// Input dimension (`k` of the product).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension (`n` of the product).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Recovers the code matrix in the repo's standard `[out, in]` layout —
    /// exactly the slice [`Self::try_pack`] was given. Deployment-artifact
    /// serialization uses this to export a compiled layer's codes; packing
    /// the returned codes again reproduces an identical `PackedCodes`
    /// (packing is deterministic).
    pub fn unpack_codes(&self) -> Vec<i32> {
        // rows16 already holds the codes in `[out, in]` order; every code
        // fits i8 so the i16 → i32 widening is lossless.
        self.rows16.iter().map(|&c| c as i32).collect()
    }

    /// Largest possible `|accumulator|` when the product is driven by
    /// counts in `[0, max_count]`: `max_j Σ_i |code[i,j]| · max_count`.
    /// Deployability checks compare this against `2^24` to guarantee the
    /// float oracle's sums stay exactly representable.
    pub fn max_abs_accum(&self, max_count: u32) -> i64 {
        let mut worst = 0i64;
        for j in 0..self.out_dim {
            let col: i64 = (0..self.in_dim)
                .map(|i| (self.data[i * self.out_dim + j] as i64).abs())
                .sum();
            worst = worst.max(col);
        }
        worst * max_count as i64
    }
}

/// True when every value fits `i16` — the precondition for widening an
/// operand into the `pmaddwd` dot kernel without changing its value.
fn fits_i16(vals: &[i32]) -> bool {
    vals.iter().all(|&v| v >= i16::MIN as i32 && v <= i16::MAX as i32)
}

/// Widens an `i16`-ranged `i32` slice into `dst` (caller checked the range).
fn widen_i16(src: &[i32], dst: &mut [i16]) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = s as i16;
    }
}

/// One row band of the integer product: `c[mb×n] += a[mb×k] · B`.
///
/// Mirrors the `f32` `gemm_band` loop nest; per-element accumulation order
/// is ascending `k`, so banding cannot change results (and integer adds are
/// associative regardless).
fn igemm_band(kernel: GemmKernel, mb: usize, k: usize, n: usize, a: &[i32], b: &[i8], c: &mut [i32]) {
    let skip = kernel == GemmKernel::SkipZeros;
    for i0 in (0..mb).step_by(BLOCK) {
        let i_end = (i0 + BLOCK).min(mb);
        for k0 in (0..k).step_by(BLOCK) {
            let k_end = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j_end = (j0 + BLOCK).min(n);
                for i in i0..i_end {
                    for kk in k0..k_end {
                        let aik = a[i * k + kk];
                        if skip && aik == 0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + j_end];
                        let crow = &mut c[i * n + j0..i * n + j_end];
                        for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                            *cv += aik * bv as i32;
                        }
                    }
                }
            }
        }
    }
}

/// Integer GEMM: `c[m×n] += a[m×k] · b` with `i32` accumulation.
///
/// `a` holds spike counts (row-major `[m, k]`), `b` the packed weight codes.
/// The caller zero-initializes `c` for a pure product. Kernel selection
/// follows the process-wide [`crate::GemmKernel`] setting; `Auto` samples
/// `a` for zeros with the decision cached per `(m, k, n)` shape. Large
/// products split across the [`crate::parallel`] workers by output row —
/// integer accumulation makes banding trivially exact.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions.
pub fn igemm(m: usize, k: usize, n: usize, a: &[i32], b: &PackedCodes, c: &mut [i32]) {
    assert_eq!(k, b.in_dim, "igemm inner dim disagrees with packed codes");
    assert_eq!(n, b.out_dim, "igemm output dim disagrees with packed codes");
    assert_eq!(a.len(), m * k, "lhs slice length mismatch");
    assert_eq!(c.len(), m * n, "output slice length mismatch");

    let level = simd::simd_level();
    let kernel = resolve_kernel_cached_i32(m, k, n, a, level);
    if qsnc_telemetry::enabled() {
        qsnc_telemetry::counter_add("tensor.igemm.calls", 1);
        let name = match kernel {
            GemmKernel::SkipZeros => "tensor.igemm.kernel.skip_zeros",
            _ => "tensor.igemm.kernel.dense",
        };
        qsnc_telemetry::counter_add(name, 1);
    }
    if kernel != GemmKernel::SkipZeros && level != SimdLevel::Scalar && fits_i16(a) {
        // SIMD dot path: counts widened per call, codes pre-widened at pack
        // time; the shared dot kernel streams code rows register-tiled.
        let mut a16 = scratch::take_i16(m * k);
        widen_i16(a, &mut a16);
        if m < 2 || m * k * n < 32 * 1024 || parallel::num_threads() == 1 {
            simd::dot_tiles(level, k, &b.rows16, n, &a16, m, c, n);
        } else {
            let a16 = &a16;
            parallel::par_bands_mut(c, m, n, |row0, rows, c_band| {
                simd::dot_tiles(
                    level,
                    k,
                    &b.rows16,
                    n,
                    &a16[row0 * k..(row0 + rows) * k],
                    rows,
                    c_band,
                    n,
                );
            });
        }
        scratch::put_i16(a16);
        return;
    }
    if m < 2 || m * k * n < 32 * 1024 || parallel::num_threads() == 1 {
        igemm_band(kernel, m, k, n, a, &b.data, c);
        return;
    }
    parallel::par_bands_mut(c, m, n, |row0, rows, c_band| {
        igemm_band(kernel, rows, k, n, &a[row0 * k..(row0 + rows) * k], &b.data, c_band);
    });
}

/// One output-channel band of [`igemm_wx`]: `c[fb×pix] += W[fb×k] · x`.
///
/// `f0` is the first output channel of the band; weight reads go through the
/// packed `[in, out]` layout (`w[f, kk] = data[kk · out + f]`), only
/// `fb · k` scalar loads against `fb · k · pix` streamed MACs.
#[allow(clippy::too_many_arguments)] // flat scalars keep the hot loop call free of struct plumbing
fn igemm_wx_band(
    kernel: GemmKernel,
    f0: usize,
    fb: usize,
    out_dim: usize,
    k: usize,
    pix: usize,
    w: &[i8],
    x: &[i32],
    c: &mut [i32],
) {
    let skip = kernel == GemmKernel::SkipZeros;
    // Tile pixels and taps so the x tile (BLOCK² · 4 B = 16 KiB) stays in
    // L1 while every output channel of the band reuses it; without the
    // tiling each channel would stream the whole column matrix from memory.
    for p0 in (0..pix).step_by(BLOCK) {
        let p_end = (p0 + BLOCK).min(pix);
        for k0 in (0..k).step_by(BLOCK) {
            let k_end = (k0 + BLOCK).min(k);
            for f in 0..fb {
                let crow = &mut c[f * pix + p0..f * pix + p_end];
                for kk in k0..k_end {
                    let wk = w[kk * out_dim + f0 + f] as i32;
                    if skip && wk == 0 {
                        continue;
                    }
                    let xrow = &x[kk * pix + p0..kk * pix + p_end];
                    for (cv, &xv) in crow.iter_mut().zip(xrow.iter()) {
                        *cv += wk * xv;
                    }
                }
            }
        }
    }
}

/// Integer GEMM in weights-times-columns orientation:
/// `c[out×pix] += W[out×k] · x[k×pix]`, with `W` the packed weight codes.
///
/// This is the conv fast path's orientation — the inner loop streams a whole
/// pixel row (`pix` is `oh·ow`, typically hundreds), instead of the handful
/// of output channels [`igemm`]'s row-major orientation would give it, and
/// the output lands channel-major like the spiking pipeline's signals. The
/// zero-skip here elides whole `pix`-length passes for zero weight codes,
/// which clustered weights make common. Accumulation is exact integer
/// arithmetic, so banding and skipping are result-preserving.
///
/// Kernel selection samples the **weight** operand (under `Auto`, cached per
/// shape); large products split across the [`crate::parallel`] workers by
/// output channel.
///
/// # Panics
///
/// Panics if slice lengths disagree with the stated dimensions.
pub fn igemm_wx(out_dim: usize, k: usize, pix: usize, w: &PackedCodes, x: &[i32], c: &mut [i32]) {
    assert_eq!(k, w.in_dim, "igemm_wx inner dim disagrees with packed codes");
    assert_eq!(out_dim, w.out_dim, "igemm_wx output dim disagrees with packed codes");
    assert_eq!(x.len(), k * pix, "column matrix length mismatch");
    assert_eq!(c.len(), out_dim * pix, "output slice length mismatch");

    let level = simd::simd_level();
    let kernel = resolve_kernel_cached_i8(out_dim, k, pix, &w.data, level);
    if qsnc_telemetry::enabled() {
        qsnc_telemetry::counter_add("tensor.igemm.calls", 1);
        let name = match kernel {
            GemmKernel::SkipZeros => "tensor.igemm.kernel.skip_zeros",
            _ => "tensor.igemm.kernel.dense",
        };
        qsnc_telemetry::counter_add(name, 1);
    }
    if kernel != GemmKernel::SkipZeros && level == SimdLevel::Avx2 {
        // AVX2 axpy paths: both consume the `[k, pix]` layout over
        // contiguous pixel strips — no transpose. When the counts fit
        // `i16` (the steady state — spike counts are ≤ 255), adjacent `k`
        // rows are pre-packed once into `i16` pair words (a cheap
        // sequential pass, amortized over every output row) and the
        // `pmaddwd` kernel runs 16 MACs per multiply against the weight
        // pair panel built at pack time. Wider counts take the exact
        // `vpmulld` body instead.
        let serial = out_dim < 2 || out_dim * k * pix < 32 * 1024 || parallel::num_threads() == 1;
        let kp = k.div_ceil(2);
        let mut xpk = scratch::take_i32(kp * pix);
        // The i16 range check is fused into the packing pass — one read of
        // the counts instead of a scan followed by a pack.
        if simd::pack_wx_pairs(level, k, pix, x, &mut xpk) {
            if serial {
                simd::wx_axpy_packed(level, out_dim, kp, pix, &w.pairs16, &xpk, c);
            } else {
                parallel::par_bands_mut(c, out_dim, pix, |f0, fb, c_band| {
                    simd::wx_axpy_packed(
                        level,
                        fb,
                        kp,
                        pix,
                        &w.pairs16[f0 * kp..(f0 + fb) * kp],
                        &xpk,
                        c_band,
                    );
                });
            }
            scratch::put_i32(xpk);
            return;
        }
        scratch::put_i32(xpk);
        if serial {
            simd::wx_axpy(level, out_dim, k, pix, &w.rows16, x, c);
            return;
        }
        parallel::par_bands_mut(c, out_dim, pix, |f0, fb, c_band| {
            simd::wx_axpy(level, fb, k, pix, &w.rows16[f0 * k..(f0 + fb) * k], x, c_band);
        });
        return;
    }
    if kernel != GemmKernel::SkipZeros && level != SimdLevel::Scalar && fits_i16(x) {
        // SSE2 dot path (no packed 32-bit multiply below AVX2): transpose
        // the column matrix once into i16 pixel rows (O(k·pix) moves
        // against O(out·k·pix) MACs), then run the same dot kernel as
        // `igemm` with the roles swapped — pixel rows are the
        // register-tiled side, code rows the outer side.
        let mut xr16 = scratch::take_i16(pix * k);
        for kk in 0..k {
            let xrow = &x[kk * pix..(kk + 1) * pix];
            for (p, &xv) in xrow.iter().enumerate() {
                xr16[p * k + kk] = xv as i16;
            }
        }
        wx_dot(level, out_dim, k, pix, &w.rows16, &xr16, c);
        scratch::put_i16(xr16);
        return;
    }
    if out_dim < 2 || out_dim * k * pix < 32 * 1024 || parallel::num_threads() == 1 {
        igemm_wx_band(kernel, 0, out_dim, out_dim, k, pix, &w.data, x, c);
        return;
    }
    parallel::par_bands_mut(c, out_dim, pix, |f0, fb, c_band| {
        igemm_wx_band(kernel, f0, fb, out_dim, k, pix, &w.data, x, c_band);
    });
}

/// Shared SIMD tail of [`igemm_wx`] and [`igemm_conv`]: `c[out×pix] +=
/// W · xr16ᵀ` where `xr16` holds one widened `i16` row per output pixel.
fn wx_dot(level: SimdLevel, out_dim: usize, k: usize, pix: usize, w16: &[i16], xr16: &[i16], c: &mut [i32]) {
    if out_dim < 2 || out_dim * k * pix < 32 * 1024 || parallel::num_threads() == 1 {
        simd::dot_tiles(level, k, xr16, pix, w16, out_dim, c, pix);
        return;
    }
    parallel::par_bands_mut(c, out_dim, pix, |f0, fb, c_band| {
        simd::dot_tiles(level, k, xr16, pix, &w16[f0 * k..(f0 + fb) * k], fb, c_band, pix);
    });
}

/// Lowers one integer image `[c, h, w]` to the `[c·k·k, oh·ow]` column
/// matrix [`igemm_wx`] consumes (one row per filter tap, matching the `f32`
/// `im2col` layout). Zero padding is folded in: taps that fall outside the
/// image write 0, so no padded copy is built.
///
/// # Panics
///
/// Panics if `src` or `cols` disagree with the implied geometry.
pub fn im2col_i32(
    src: &[i32],
    c: usize,
    (h, w): (usize, usize),
    spec: Conv2dSpec,
    cols: &mut [i32],
) {
    let k = spec.kernel;
    let pad = spec.padding;
    let oh = spec.output_size(h);
    let ow = spec.output_size(w);
    let pix = oh * ow;
    assert_eq!(src.len(), c * h * w, "im2col_i32 source length mismatch");
    assert_eq!(cols.len(), c * k * k * pix, "im2col_i32 output length mismatch");

    let mut r = 0;
    for ic in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let dst = &mut cols[r * pix..(r + 1) * pix];
                r += 1;
                for oy in 0..oh {
                    let iy = oy * spec.stride + ky;
                    let drow = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < pad || iy >= h + pad {
                        drow.fill(0);
                        continue;
                    }
                    let src_row = &src[(ic * h + iy - pad) * w..(ic * h + iy - pad + 1) * w];
                    for (ox, d) in drow.iter_mut().enumerate() {
                        let ix = ox * spec.stride + kx;
                        *d = if ix < pad || ix >= w + pad {
                            0
                        } else {
                            src_row[ix - pad]
                        };
                    }
                }
            }
        }
    }
}

/// Lowers one integer image `[c, h, w]` to the `[oh·ow, c·k·k]` row matrix
/// [`igemm`] consumes (one row per output pixel). Zero padding is folded in:
/// taps that fall outside the image write 0, so no padded copy is built.
///
/// # Panics
///
/// Panics if `src` or `rows` disagree with the implied geometry.
pub fn im2row_i32(
    src: &[i32],
    c: usize,
    (h, w): (usize, usize),
    spec: Conv2dSpec,
    rows: &mut [i32],
) {
    im2row_with(src, c, (h, w), spec, rows, |v| v);
}

/// [`im2row_i32`] writing directly into the widened `i16` panel the SIMD dot
/// kernel consumes. The caller has already range-checked `src` (the cast is
/// lossless for `i16`-ranged values).
fn im2row_i16(src: &[i32], c: usize, (h, w): (usize, usize), spec: Conv2dSpec, rows: &mut [i16]) {
    im2row_with(src, c, (h, w), spec, rows, |v| v as i16);
}

/// Shared im2row lowering, parameterized over the output element cast so the
/// `i32` and widened-`i16` variants stay one loop nest.
fn im2row_with<T: Copy + Default>(
    src: &[i32],
    c: usize,
    (h, w): (usize, usize),
    spec: Conv2dSpec,
    rows: &mut [T],
    cast: impl Fn(i32) -> T,
) {
    let k = spec.kernel;
    let pad = spec.padding;
    let oh = spec.output_size(h);
    let ow = spec.output_size(w);
    let ckk = c * k * k;
    assert_eq!(src.len(), c * h * w, "im2row source length mismatch");
    assert_eq!(rows.len(), oh * ow * ckk, "im2row output length mismatch");

    for oy in 0..oh {
        for ox in 0..ow {
            let out = &mut rows[(oy * ow + ox) * ckk..(oy * ow + ox + 1) * ckk];
            for ic in 0..c {
                for ky in 0..k {
                    let tap = &mut out[(ic * k + ky) * k..(ic * k + ky) * k + k];
                    let iy = oy * spec.stride + ky;
                    if iy < pad || iy >= h + pad {
                        tap.fill(T::default());
                        continue;
                    }
                    let src_row = &src[(ic * h + iy - pad) * w..(ic * h + iy - pad + 1) * w];
                    for (kx, t) in tap.iter_mut().enumerate() {
                        let ix = ox * spec.stride + kx;
                        *t = if ix < pad || ix >= w + pad {
                            T::default()
                        } else {
                            cast(src_row[ix - pad])
                        };
                    }
                }
            }
        }
    }
}

/// Integer convolution via the faster of the two lowerings:
/// `c[out×oh·ow] += W · lower(src)` for one `[in_c, h, w]` image.
///
/// The two lowerings compute the same product in different loop orders:
/// `im2col` feeds the axpy orientation ([`igemm_wx`]) — the AVX2 strip
/// kernel's native layout, and the one whose zero-skip elides whole pixel
/// rows per zero weight code; `im2row` feeds the SSE2 dot kernel, whose
/// register tiles want one contiguous `i16` row per output pixel. This
/// routine picks per call — axpy on AVX2, for skip-zeros, and for scalar;
/// the dot lowering on SSE2 when the image fits `i16` — so callers always
/// get the better loop order without choosing a lowering themselves.
///
/// # Panics
///
/// Panics if `src` or `c` disagree with the geometry implied by `spec` and
/// the packed codes (`w.in_dim` must equal `in_c · kernel²`).
pub fn igemm_conv(
    src: &[i32],
    in_c: usize,
    (h, wd): (usize, usize),
    spec: Conv2dSpec,
    w: &PackedCodes,
    c: &mut [i32],
) {
    let ckk = in_c * spec.kernel * spec.kernel;
    let pix = spec.output_size(h) * spec.output_size(wd);
    assert_eq!(ckk, w.in_dim, "igemm_conv taps disagree with packed codes");
    assert_eq!(src.len(), in_c * h * wd, "igemm_conv source length mismatch");
    assert_eq!(c.len(), w.out_dim * pix, "igemm_conv output length mismatch");

    let level = simd::simd_level();
    let kernel = resolve_kernel_cached_i8(w.out_dim, ckk, pix, &w.data, level);
    if level == SimdLevel::Avx2 || kernel == GemmKernel::SkipZeros || level == SimdLevel::Scalar {
        // axpy lowering: on AVX2 `igemm_wx` runs the strip axpy kernel
        // straight off the im2col layout (the fastest path); the skip-zeros
        // and scalar kernels also live in this orientation.
        let mut cols = scratch::take_i32(ckk * pix);
        im2col_i32(src, in_c, (h, wd), spec, &mut cols);
        igemm_wx(w.out_dim, ckk, pix, w, &cols, c);
        scratch::put_i32(cols);
        return;
    }
    if fits_i16(src) {
        let mut rows16 = scratch::take_i16(pix * ckk);
        im2row_i16(src, in_c, (h, wd), spec, &mut rows16);
        if qsnc_telemetry::enabled() {
            qsnc_telemetry::counter_add("tensor.igemm.calls", 1);
            qsnc_telemetry::counter_add("tensor.igemm.kernel.dense", 1);
        }
        wx_dot(level, w.out_dim, ckk, pix, &w.rows16, &rows16, c);
        scratch::put_i16(rows16);
        return;
    }
    // SSE2 with counts past i16: the dot kernel cannot widen, fall back to
    // the axpy orientation (which re-resolves and runs its scalar bands).
    let mut cols = scratch::take_i32(ckk * pix);
    im2col_i32(src, in_c, (h, wd), spec, &mut cols);
    igemm_wx(w.out_dim, ckk, pix, w, &cols, c);
    scratch::put_i32(cols);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{reset_gemm_kernel_for_tests, set_gemm_kernel, KERNEL_TEST_LOCK};

    fn naive(m: usize, k: usize, n: usize, a: &[i32], codes: &[i32]) -> Vec<i32> {
        // codes in [out, in] = [n, k] layout, matching try_pack's input.
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += a[i * k + kk] * codes[j * k + kk];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn pseudo(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *seed >> 33
    }

    #[test]
    fn igemm_matches_naive_on_odd_shapes() {
        let mut seed = 7u64;
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (65, 17, 33), (70, 70, 70), (1, 400, 10)] {
            let a: Vec<i32> = (0..m * k).map(|_| (pseudo(&mut seed) % 16) as i32).collect();
            let codes: Vec<i32> =
                (0..n * k).map(|_| (pseudo(&mut seed) % 17) as i32 - 8).collect();
            let packed = PackedCodes::try_pack(&codes, n, k).expect("codes fit i8");
            let mut c = vec![0i32; m * n];
            igemm(m, k, n, &a, &packed, &mut c);
            assert_eq!(c, naive(m, k, n, &a, &codes), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn dense_and_skipzeros_agree_exactly() {
        let mut seed = 11u64;
        let (m, k, n) = (40, 50, 60);
        let a: Vec<i32> = (0..m * k)
            .map(|i| if i % 3 == 0 { 0 } else { (pseudo(&mut seed) % 8) as i32 })
            .collect();
        let codes: Vec<i32> = (0..n * k).map(|_| (pseudo(&mut seed) % 5) as i32 - 2).collect();
        let packed = PackedCodes::try_pack(&codes, n, k).unwrap();
        let mut dense = vec![0i32; m * n];
        let mut skip = vec![0i32; m * n];
        igemm_band(GemmKernel::Dense, m, k, n, &a, &packed.data, &mut dense);
        igemm_band(GemmKernel::SkipZeros, m, k, n, &a, &packed.data, &mut skip);
        assert_eq!(dense, skip);
    }

    #[test]
    fn igemm_accumulates_into_c() {
        let codes = vec![1, 0, 0, 1]; // identity, [out=2, in=2]
        let packed = PackedCodes::try_pack(&codes, 2, 2).unwrap();
        let a = vec![2, 3];
        let mut c = vec![10, -10];
        igemm(1, 2, 2, &a, &packed, &mut c);
        assert_eq!(c, vec![12, -7]);
    }

    #[test]
    fn parallel_igemm_identical_to_serial() {
        let mut seed = 13u64;
        let (m, k, n) = (128, 32, 100);
        let a: Vec<i32> = (0..m * k).map(|_| (pseudo(&mut seed) % 16) as i32).collect();
        let codes: Vec<i32> = (0..n * k).map(|_| (pseudo(&mut seed) % 17) as i32 - 8).collect();
        let packed = PackedCodes::try_pack(&codes, n, k).unwrap();
        let mut serial = vec![0i32; m * n];
        crate::parallel::with_num_threads(1, || igemm(m, k, n, &a, &packed, &mut serial));
        for threads in [2, 3, 8] {
            let mut par = vec![0i32; m * n];
            crate::parallel::with_num_threads(threads, || igemm(m, k, n, &a, &packed, &mut par));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn pack_rejects_codes_outside_i8() {
        assert!(PackedCodes::try_pack(&[127, -128], 2, 1).is_some());
        assert!(PackedCodes::try_pack(&[128, 0], 2, 1).is_none());
        assert!(PackedCodes::try_pack(&[0, -129], 2, 1).is_none());
    }

    #[test]
    fn pack_transposes_layout() {
        // [out=2, in=3]: row 0 = [1,2,3], row 1 = [4,5,6].
        let packed = PackedCodes::try_pack(&[1, 2, 3, 4, 5, 6], 2, 3).unwrap();
        // [in, out] layout: data[i*2 + j] = codes[j*3 + i].
        assert_eq!(packed.data, vec![1, 4, 2, 5, 3, 6]);
        assert_eq!(packed.max_abs_accum(1), 15); // col 1: 4+5+6
    }

    #[test]
    fn im2row_matches_im2col_transposed() {
        use crate::conv::im2col;
        use crate::tensor::Tensor;
        for &(c, h, w, k, stride, pad) in
            &[(1, 3, 3, 2, 1, 0), (2, 5, 4, 3, 1, 1), (3, 6, 6, 3, 2, 2)]
        {
            let spec = Conv2dSpec::new(k, stride, pad);
            let mut seed = 3u64;
            let src: Vec<i32> = (0..c * h * w).map(|_| (pseudo(&mut seed) % 9) as i32).collect();
            let x = Tensor::from_vec(src.iter().map(|&v| v as f32).collect(), [1, c, h, w]);
            let cols = im2col(&x, spec); // [c·k·k, oh·ow]
            let (ckk, pix) = (cols.dims()[0], cols.dims()[1]);
            let mut rows = vec![0i32; pix * ckk];
            im2row_i32(&src, c, (h, w), spec, &mut rows);
            for r in 0..ckk {
                for p in 0..pix {
                    assert_eq!(
                        rows[p * ckk + r] as f32,
                        cols.as_slice()[r * pix + p],
                        "c={c} h={h} w={w} k={k} s={stride} pad={pad} tap={r} pix={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn igemm_wx_matches_naive_transposed() {
        let mut seed = 17u64;
        for &(out, k, pix) in &[(1, 1, 1), (3, 25, 784), (8, 75, 100), (16, 64, 33)] {
            let x: Vec<i32> = (0..k * pix).map(|_| (pseudo(&mut seed) % 16) as i32).collect();
            let codes: Vec<i32> =
                (0..out * k).map(|_| (pseudo(&mut seed) % 17) as i32 - 8).collect();
            let packed = PackedCodes::try_pack(&codes, out, k).expect("codes fit i8");
            let mut c = vec![0i32; out * pix];
            igemm_wx(out, k, pix, &packed, &x, &mut c);
            for f in 0..out {
                for p in 0..pix {
                    let expect: i32 = (0..k).map(|kk| codes[f * k + kk] * x[kk * pix + p]).sum();
                    assert_eq!(c[f * pix + p], expect, "out={out} k={k} pix={pix} f={f} p={p}");
                }
            }
        }
    }

    #[test]
    fn igemm_wx_dense_skipzeros_and_parallel_agree() {
        let mut seed = 19u64;
        let (out, k, pix) = (16, 50, 128);
        let x: Vec<i32> = (0..k * pix).map(|_| (pseudo(&mut seed) % 16) as i32).collect();
        // Mostly-zero codes: exercise the skip branch for real.
        let codes: Vec<i32> = (0..out * k)
            .map(|i| if i % 4 != 0 { 0 } else { (pseudo(&mut seed) % 9) as i32 - 4 })
            .collect();
        let packed = PackedCodes::try_pack(&codes, out, k).unwrap();
        let mut dense = vec![0i32; out * pix];
        let mut skip = vec![0i32; out * pix];
        let guard = KERNEL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_gemm_kernel(GemmKernel::Dense);
        crate::parallel::with_num_threads(1, || igemm_wx(out, k, pix, &packed, &x, &mut dense));
        set_gemm_kernel(GemmKernel::SkipZeros);
        crate::parallel::with_num_threads(1, || igemm_wx(out, k, pix, &packed, &x, &mut skip));
        reset_gemm_kernel_for_tests();
        drop(guard);
        assert_eq!(dense, skip);
        for threads in [2, 3, 8] {
            let mut par = vec![0i32; out * pix];
            crate::parallel::with_num_threads(threads, || {
                igemm_wx(out, k, pix, &packed, &x, &mut par)
            });
            assert_eq!(par, dense, "threads={threads}");
        }
    }

    #[test]
    fn im2col_i32_matches_f32_im2col() {
        use crate::conv::im2col;
        use crate::tensor::Tensor;
        for &(c, h, w, k, stride, pad) in
            &[(1, 3, 3, 2, 1, 0), (2, 5, 4, 3, 1, 1), (3, 6, 6, 3, 2, 2), (1, 28, 28, 5, 1, 2)]
        {
            let spec = Conv2dSpec::new(k, stride, pad);
            let mut seed = 5u64;
            let src: Vec<i32> = (0..c * h * w).map(|_| (pseudo(&mut seed) % 9) as i32).collect();
            let x = Tensor::from_vec(src.iter().map(|&v| v as f32).collect(), [1, c, h, w]);
            let expect = im2col(&x, spec); // [c·k·k, oh·ow]
            let mut cols = vec![0i32; expect.as_slice().len()];
            im2col_i32(&src, c, (h, w), spec, &mut cols);
            let got: Vec<f32> = cols.iter().map(|&v| v as f32).collect();
            assert_eq!(got, expect.as_slice(), "c={c} h={h} w={w} k={k} s={stride} pad={pad}");
        }
    }

    #[test]
    fn kernel_setting_respected() {
        let _guard = KERNEL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_gemm_kernel(GemmKernel::SkipZeros);
        let packed = PackedCodes::try_pack(&[1, 1], 1, 2).unwrap();
        let mut c = vec![0i32];
        igemm(1, 2, 1, &[0, 5], &packed, &mut c);
        assert_eq!(c, vec![5]);
        reset_gemm_kernel_for_tests();
    }
}
