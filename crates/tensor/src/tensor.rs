//! The dense row-major `f32` tensor at the heart of qsnc.

use crate::shape::Shape;
use std::fmt;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// All qsnc substrates (layers, quantizers, crossbar mappers) exchange data
/// through this type. It is deliberately simple: contiguous storage, no
/// views, no broadcasting beyond scalar ops — which keeps the numerical code
/// in the simulator easy to audit.
///
/// # Examples
///
/// ```
/// use qsnc_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the element count of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Tensor { shape, data }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::from(vec![data.len()]),
            data: data.to_vec(),
        }
    }

    /// Creates a scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes, as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable reference to the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert!(
            self.shape.same_len(&shape),
            "cannot reshape {} ({} elements) to {} ({} elements)",
            self.shape,
            self.shape.len(),
            shape,
            shape.len()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Consuming variant of [`reshape`](Self::reshape) that avoids a copy.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn into_reshaped(self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert!(
            self.shape.same_len(&shape),
            "cannot reshape {} to {}",
            self.shape,
            shape
        );
        Tensor {
            shape,
            data: self.data,
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutably iterates over elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "[{}{}]", preview.join(", "), if self.len() > 8 { ", …" } else { "" })
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl FromIterator<f32> for Tensor {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        Tensor::from_slice(&data)
    }
}

impl<'a> IntoIterator for &'a Tensor {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros([2, 2]).iter().all(|&x| x == 0.0));
        assert!(Tensor::ones([3]).iter().all(|&x| x == 1.0));
        assert!(Tensor::full([4], 2.5).iter().all(|&x| x == 2.5));
    }

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        Tensor::from_vec(vec![1.0], [2]);
    }

    #[test]
    fn indexing() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [2, 3, 4]);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[1, 0, 2]), 14.0);
    }

    #[test]
    fn at_mut_writes() {
        let mut t = Tensor::zeros([2, 2]);
        *t.at_mut(&[1, 1]) = 7.0;
        assert_eq!(t.at(&[1, 1]), 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let r = t.reshape([4]);
        assert_eq!(r.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.dims(), &[4]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_wrong_len_panics() {
        Tensor::zeros([2, 2]).reshape([3]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_slice(&[1.0, -2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.zip_map(&b, |x, y| x * y).as_slice(), &[3.0, -8.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_shape_mismatch_panics() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        a.zip_map(&b, |x, _| x);
    }

    #[test]
    fn collect_from_iterator() {
        let t: Tensor = (0..4).map(|x| x as f32).collect();
        assert_eq!(t.dims(), &[4]);
    }

    #[test]
    fn display_preview() {
        let t = Tensor::zeros([16]);
        let s = t.to_string();
        assert!(s.contains("…"));
    }

    #[test]
    fn scalar_tensor() {
        let t = Tensor::scalar(5.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.at(&[]), 5.0);
    }
}
