//! Persistent-pool parallelism primitives for the compute kernels.
//!
//! Everything in this crate that parallelizes — GEMM tiles, im2col row
//! bands, per-image convolution, and the batch sharding in the crates above —
//! funnels through the primitives here: [`par_bands_mut`], [`par_tiles`],
//! and [`par_map_shards`]. All of them partition work into **disjoint**
//! pieces and run the pieces on a process-wide persistent worker pool, so no
//! output element is ever touched by two threads and no ordering decision is
//! left to the scheduler. Combined with kernels whose per-element
//! accumulation order does not depend on the piece they run in, this makes
//! every parallel result **bit-identical** to the serial one at any thread
//! count.
//!
//! # Pool and work distribution
//!
//! Earlier revisions spawned scoped OS threads per call, which on GEMM-sized
//! work made `t4` *slower* than `t1` — thread creation cost rivaled the
//! kernel itself. Workers are now spawned once, lazily, and parked on a
//! condvar between jobs; a call publishes one job, the calling thread
//! participates as a worker, and everyone pulls **whole chunks** off a
//! shared atomic counter until the job drains. Chunks are sized to
//! cache-resident panels (≈`CHUNK_TARGET_BYTES` of output per chunk, and
//! at least one chunk per worker), so stealing granularity follows the L2
//! footprint of the data rather than a fixed rows-per-thread split.
//!
//! Nested parallel calls (a worker's closure calling back into this module)
//! and calls made while another thread holds the pool run inline on the
//! caller — the pool never deadlocks on itself and correctness never
//! depends on a second level of fan-out.
//!
//! # Thread-count resolution
//!
//! The worker count for a call is resolved in this order:
//!
//! 1. A scoped [`with_num_threads`] override on the calling thread
//!    (used by tests to pin a count without races).
//! 2. The process-wide value from [`set_num_threads`].
//! 3. The `QSNC_THREADS` environment variable, read once per process.
//! 4. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 runs the closure inline on the calling thread —
//! no pool interaction at all, so serial behavior (and serial stack traces)
//! are recovered exactly with `QSNC_THREADS=1`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide thread count from [`set_num_threads`]; 0 means "unset".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Default resolved from `QSNC_THREADS` / available parallelism, once.
static DEFAULT: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Scoped per-thread override installed by [`with_num_threads`].
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Sets the process-wide worker thread count for all parallel kernels.
///
/// Passing 0 resets to the default (`QSNC_THREADS`, then available
/// parallelism). A count of 1 disables threading entirely.
pub fn set_num_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// Returns the worker thread count parallel kernels will use right now.
pub fn num_threads() -> usize {
    let tl = OVERRIDE.with(Cell::get);
    if tl > 0 {
        return tl;
    }
    let global = CONFIGURED.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    *DEFAULT.get_or_init(|| {
        std::env::var("QSNC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            })
    })
}

/// Runs `f` with the worker count pinned to `n` on the calling thread.
///
/// The override only affects parallel calls made from this thread while `f`
/// runs (it is restored even on panic), which lets concurrent tests pin
/// different counts without interfering through the global setting.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// Sizes of the per-worker pieces when `items` are split across `workers`:
/// as even as possible, larger pieces first, in order.
fn piece_sizes(items: usize, workers: usize) -> impl Iterator<Item = usize> {
    let base = items / workers;
    let rem = items % workers;
    (0..workers).map(move |i| base + usize::from(i < rem))
}

/// Target output bytes per stolen chunk: roughly half a typical L2 slice, so
/// a chunk's output panel (plus the operand rows feeding it) stays
/// cache-resident while still leaving several chunks per worker to steal.
const CHUNK_TARGET_BYTES: usize = 128 * 1024;

mod pool {
    //! The process-wide persistent worker pool.
    //!
    //! One job at a time: a submitter publishes a `&(dyn Fn() + Sync)` (as a
    //! raw pointer with an epoch tag), wakes the parked workers, runs the
    //! closure itself, then blocks until every participating worker has
    //! finished before returning — which is exactly what makes lending the
    //! stack-borrowed closure to the pool sound. Workers park on a condvar
    //! between jobs, so steady-state cost per parallel call is one
    //! notify/wait round-trip instead of thread spawn + join.

    use std::any::Any;
    use std::cell::Cell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Condvar, Mutex, OnceLock};

    /// Hard cap on pool workers, far above any sane `QSNC_THREADS`.
    const POOL_CAP: usize = 64;

    /// A borrowed job closure, valid only until its submitter returns.
    ///
    /// The raw pointer erases the closure's stack lifetime; `run` upholds it
    /// by not returning until `active == 0`.
    #[derive(Clone, Copy)]
    struct Task(*const (dyn Fn() + Sync));

    // SAFETY: the pointee is `Sync` (shared calls are fine) and `run` keeps
    // it alive for as long as any worker can hold this pointer.
    unsafe impl Send for Task {}

    struct State {
        /// Monotonic job id; workers use it to claim each job at most once.
        epoch: u64,
        /// The published job, present only while a submitter is inside `run`.
        task: Option<Task>,
        /// Workers still allowed to join the current job.
        helpers_wanted: usize,
        /// Workers currently executing the current job.
        active: usize,
        /// Pool threads spawned so far.
        spawned: usize,
        /// A submitter currently owns the pool (jobs are exclusive).
        busy: bool,
        /// First worker panic of the current job, rethrown by the submitter.
        panic: Option<Box<dyn Any + Send>>,
    }

    struct Shared {
        state: Mutex<State>,
        /// Signaled when a new job is published.
        work: Condvar,
        /// Signaled when the last active worker finishes a job.
        done: Condvar,
    }

    fn shared() -> &'static Shared {
        static SHARED: OnceLock<Shared> = OnceLock::new();
        SHARED.get_or_init(|| Shared {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                helpers_wanted: 0,
                active: 0,
                spawned: 0,
                busy: false,
                panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        })
    }

    thread_local! {
        /// True for the lifetime of a pool worker thread; nested parallel
        /// calls from a worker run inline instead of re-entering the pool.
        static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    }

    /// Body of each persistent pool thread: park, claim, run, repeat.
    fn worker_loop() {
        IS_POOL_WORKER.with(|c| c.set(true));
        let sh = shared();
        let mut last_epoch = 0u64;
        loop {
            let task = {
                let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if st.helpers_wanted > 0 && st.epoch != last_epoch {
                        if let Some(task) = st.task {
                            last_epoch = st.epoch;
                            st.helpers_wanted -= 1;
                            st.active += 1;
                            break task;
                        }
                    }
                    st = sh.work.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            // SAFETY: the submitter keeps the pointee alive until `active`
            // returns to 0, which cannot happen before this call returns.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*task.0)() }));
            let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(payload) = result {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
            st.active -= 1;
            if st.active == 0 {
                sh.done.notify_all();
            }
        }
    }

    /// Runs `f` concurrently on the calling thread plus up to `workers - 1`
    /// pool workers, returning after every participant has finished.
    ///
    /// `f` is invoked once per participating thread; callers layer chunk
    /// stealing on top (an atomic counter inside `f`). Worker panics are
    /// rethrown here after the job fully drains. Calls from inside a pool
    /// worker, or while another thread owns the pool, run `f` inline once —
    /// the caller's own stealing loop still completes the whole job.
    pub(super) fn run(workers: usize, f: &(dyn Fn() + Sync)) {
        if workers <= 1 || IS_POOL_WORKER.with(Cell::get) {
            f();
            return;
        }
        let sh = shared();
        {
            let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.busy {
                drop(st);
                f();
                return;
            }
            st.busy = true;
            st.epoch += 1;
            st.panic = None;
            // SAFETY(lifetime erasure): `run` does not return until
            // `active == 0` below, so no worker outlives the borrow.
            st.task = Some(Task(unsafe {
                std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                    f as *const (dyn Fn() + Sync),
                )
            }));
            let helpers = (workers - 1).min(POOL_CAP);
            st.helpers_wanted = helpers;
            while st.spawned < helpers {
                st.spawned += 1;
                let idx = st.spawned;
                std::thread::Builder::new()
                    .name(format!("qsnc-pool-{idx}"))
                    .spawn(worker_loop)
                    .expect("failed to spawn pool worker");
            }
            sh.work.notify_all();
        }
        let own = catch_unwind(AssertUnwindSafe(f));
        let worker_panic = {
            let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
            st.helpers_wanted = 0;
            st.task = None;
            while st.active > 0 {
                st = sh.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let p = st.panic.take();
            st.busy = false;
            p
        };
        if let Err(payload) = own {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

/// Runs `task(i)` for every `i < pieces`, pulled off a shared atomic counter
/// by `workers` threads (the caller plus pool workers). Whole pieces are
/// stolen, never split.
fn run_stealing<F>(workers: usize, pieces: usize, task: F)
where
    F: Fn(usize) + Sync,
{
    let next = AtomicUsize::new(0);
    let body = move || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= pieces {
            break;
        }
        task(i);
    };
    pool::run(workers.min(pieces), &body);
}

/// Raw base pointer that may cross to pool workers; the stealing loops hand
/// each worker disjoint index ranges, so aliasing never occurs.
struct SendPtr<T>(*mut T);
// SAFETY: pointees are `Send` and every index is claimed by exactly one
// worker via `fetch_add`, so this is a partition of `&mut` access, not
// sharing.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — workers only dereference disjoint offsets.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Splits `data` — `rows` rows of `row_len` elements — into contiguous row
/// chunks sized for cache residency (≈`CHUNK_TARGET_BYTES` each, at least
/// one per worker) and runs `f(first_row, chunk_rows, chunk)` on each chunk,
/// stolen whole off a shared counter by the worker pool.
///
/// Chunks are disjoint `&mut` slices, so each output row is written by
/// exactly one thread. With one worker (or one row), `f` runs inline on the
/// calling thread over the whole slice.
///
/// # Panics
///
/// Panics if `data.len() != rows * row_len`, or propagates a worker panic.
pub fn par_bands_mut<T, F>(data: &mut [T], rows: usize, row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    assert_eq!(data.len(), rows * row_len, "par_bands_mut slice/geometry mismatch");
    let workers = num_threads().min(rows).max(1);
    if workers == 1 {
        f(0, rows, data);
        return;
    }
    let row_bytes = row_len * std::mem::size_of::<T>();
    let per_worker = rows.div_ceil(workers);
    let cache_rows =
        CHUNK_TARGET_BYTES.checked_div(row_bytes).map_or(per_worker, |rows| rows.max(1));
    let chunk = per_worker.min(cache_rows).max(1);
    let chunks = rows.div_ceil(chunk);
    let base = SendPtr(data.as_mut_ptr());
    let base = &base;
    run_stealing(workers, chunks, |ci| {
        let r0 = ci * chunk;
        let nr = chunk.min(rows - r0);
        // SAFETY: chunk index `ci` is claimed by exactly one worker, and
        // chunks tile `0..rows` disjointly, so this `&mut` slice aliases
        // nothing else alive.
        let band =
            unsafe { std::slice::from_raw_parts_mut(base.0.add(r0 * row_len), nr * row_len) };
        f(r0, nr, band);
    });
}

/// Runs `f(tile_row, tile_col)` for every cell of a `tiles_r × tiles_c`
/// grid, with whole tiles stolen off a shared counter by the worker pool.
///
/// This is the 2-D work distributor behind the blocked GEMM paths: the
/// caller maps tile coordinates to disjoint output panels, so any schedule
/// of tile executions writes each output element exactly once. `f` receives
/// every cell exactly once; with one worker the grid runs inline in
/// row-major order.
///
/// # Panics
///
/// Propagates a worker panic.
pub fn par_tiles<F>(tiles_r: usize, tiles_c: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let total = tiles_r.checked_mul(tiles_c).expect("par_tiles grid overflows usize");
    if total == 0 {
        return;
    }
    let workers = num_threads().min(total).max(1);
    if workers == 1 {
        for tr in 0..tiles_r {
            for tc in 0..tiles_c {
                f(tr, tc);
            }
        }
        return;
    }
    run_stealing(workers, total, |i| f(i / tiles_c, i % tiles_c));
}

/// Splits `items` into contiguous shards, one per worker, maps each shard
/// with `f(first_index, shard)` concurrently, and returns the results in
/// shard order.
///
/// Use this when each worker needs its own state (e.g. a cloned network):
/// build the state inside `f`, once per shard. With one worker the single
/// call runs inline. An empty input yields an empty result. The result
/// length is always `min(num_threads(), items.len())`.
///
/// # Panics
///
/// Propagates a worker panic.
pub fn par_map_shards<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = num_threads().min(items.len()).max(1);
    if workers == 1 {
        return vec![f(0, items)];
    }
    let mut bounds = Vec::with_capacity(workers);
    let mut start = 0;
    for shard_len in piece_sizes(items.len(), workers) {
        bounds.push((start, shard_len));
        start += shard_len;
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(workers);
    out.resize_with(workers, || None);
    let slot = SendPtr(out.as_mut_ptr());
    let slot = &slot;
    run_stealing(workers, workers, |si| {
        let (first, len) = bounds[si];
        let r = f(first, &items[first..first + len]);
        // SAFETY: shard index `si` is claimed by exactly one worker and each
        // `out` slot is written exactly once.
        unsafe { *slot.0.add(si) = Some(r) };
    });
    out.into_iter()
        .map(|r| r.expect("par_map_shards: shard result missing after job drained"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piece_sizes_cover_exactly() {
        for items in 0..40 {
            for workers in 1..9 {
                let sizes: Vec<usize> = piece_sizes(items, workers).collect();
                assert_eq!(sizes.len(), workers);
                assert_eq!(sizes.iter().sum::<usize>(), items);
                // Monotone non-increasing, difference at most one.
                for w in sizes.windows(2) {
                    assert!(w[0] >= w[1] && w[0] - w[1] <= 1);
                }
            }
        }
    }

    #[test]
    fn with_num_threads_scopes_and_restores() {
        let outer = num_threads();
        let inner = with_num_threads(3, num_threads);
        assert_eq!(inner, 3);
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn with_num_threads_restores_on_panic() {
        let outer = num_threads();
        let caught = std::panic::catch_unwind(|| with_num_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn par_bands_mut_writes_every_row_once() {
        for threads in [1, 2, 3, 7] {
            with_num_threads(threads, || {
                let (rows, row_len) = (13, 5);
                let mut data = vec![0u32; rows * row_len];
                par_bands_mut(&mut data, rows, row_len, |first, n, band| {
                    for (r, row) in band.chunks_mut(row_len).enumerate() {
                        assert!(r < n);
                        row.fill((first + r) as u32);
                    }
                });
                for r in 0..rows {
                    assert!(data[r * row_len..(r + 1) * row_len].iter().all(|&v| v == r as u32));
                }
            });
        }
    }

    #[test]
    fn par_bands_mut_handles_empty_and_degenerate() {
        let mut empty: Vec<u32> = Vec::new();
        par_bands_mut(&mut empty, 0, 4, |_, _, _| {});
        par_bands_mut(&mut empty, 4, 0, |_, n, band| {
            assert_eq!(band.len(), 0);
            assert!(n <= 4);
        });
        let mut one = vec![0u32; 6];
        with_num_threads(8, || {
            par_bands_mut(&mut one, 1, 6, |first, n, band| {
                assert_eq!((first, n, band.len()), (0, 1, 6));
                band.fill(9);
            });
        });
        assert!(one.iter().all(|&v| v == 9));
    }

    #[test]
    fn par_bands_mut_steals_many_small_chunks() {
        // Rows so wide that the cache target forces chunk = 1 row: every row
        // is its own stolen chunk, and each must still be written once.
        let row_len = CHUNK_TARGET_BYTES / std::mem::size_of::<u32>() + 17;
        let rows = 9;
        let mut data = vec![0u32; rows * row_len];
        with_num_threads(4, || {
            par_bands_mut(&mut data, rows, row_len, |first, n, band| {
                assert_eq!(n, 1, "cache-sized chunking should split to single rows");
                for (r, row) in band.chunks_mut(row_len).enumerate() {
                    row.fill((first + r) as u32 + 1);
                }
            });
        });
        for r in 0..rows {
            assert!(data[r * row_len..(r + 1) * row_len].iter().all(|&v| v == r as u32 + 1));
        }
    }

    #[test]
    fn par_tiles_visits_every_cell_once() {
        for threads in [1, 2, 5] {
            with_num_threads(threads, || {
                let (tr, tc) = (7, 5);
                let hits: Vec<AtomicUsize> =
                    (0..tr * tc).map(|_| AtomicUsize::new(0)).collect();
                par_tiles(tr, tc, |r, c| {
                    hits[r * tc + c].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
        par_tiles(0, 5, |_, _| panic!("empty grid must not call back"));
        par_tiles(5, 0, |_, _| panic!("empty grid must not call back"));
    }

    #[test]
    fn par_map_shards_preserves_order() {
        for threads in [1, 2, 4, 9] {
            with_num_threads(threads, || {
                let items: Vec<usize> = (0..23).collect();
                let sums = par_map_shards(&items, |first, shard| {
                    assert_eq!(shard[0], first);
                    shard.iter().sum::<usize>()
                });
                assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
                assert_eq!(sums.len(), threads.min(items.len()));
            });
        }
        let none: Vec<usize> = Vec::new();
        let out: Vec<usize> = par_map_shards(&none, |_, s| s.len());
        assert!(out.is_empty());
    }

    #[test]
    fn nested_parallel_calls_run_inline_without_deadlock() {
        with_num_threads(4, || {
            let items: Vec<usize> = (0..16).collect();
            let sums = par_map_shards(&items, |_, shard| {
                // A nested call from (potentially) a pool worker: must run
                // inline and still produce the right answer.
                let inner: Vec<usize> = shard.to_vec();
                let parts = par_map_shards(&inner, |_, s| s.iter().sum::<usize>());
                parts.iter().sum::<usize>()
            });
            assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        });
    }

    #[test]
    fn pool_reuses_workers_across_calls() {
        // Two successive jobs must both complete and produce exact results —
        // exercising the park/unpark path rather than thread respawn.
        for round in 0..3u32 {
            with_num_threads(3, || {
                let mut data = vec![0u32; 32 * 8];
                par_bands_mut(&mut data, 32, 8, |first, n, band| {
                    for (r, row) in band.chunks_mut(8).enumerate() {
                        assert!(r < n);
                        row.fill((first + r) as u32 + round);
                    }
                });
                for r in 0..32 {
                    assert!(data[r * 8..(r + 1) * 8].iter().all(|&v| v == r as u32 + round));
                }
            });
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_num_threads(2, || {
                let items = [1, 2, 3, 4];
                par_map_shards(&items, |first, _| {
                    if first == 0 {
                        panic!("worker failed");
                    }
                    0
                })
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn pool_recovers_after_worker_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                par_tiles(4, 4, |r, _| {
                    if r == 2 {
                        panic!("tile failed");
                    }
                });
            })
        });
        assert!(caught.is_err());
        // The pool must be reusable (not poisoned, not busy) after a panic.
        with_num_threads(4, || {
            let hits: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
            par_tiles(2, 4, |r, c| {
                hits[r * 4 + c].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }
}
