//! Scoped-thread parallelism primitives for the compute kernels.
//!
//! Everything in this crate that parallelizes — GEMM row bands, im2col row
//! bands, per-image convolution, and the batch sharding in the crates above —
//! funnels through the two primitives here, [`par_bands_mut`] and
//! [`par_map_shards`]. Both partition work into **contiguous, disjoint**
//! pieces, one per worker, and run the pieces on scoped threads
//! (`crossbeam::thread::scope`), so no output element is ever touched by two
//! threads and no ordering decision is left to the scheduler. Combined with
//! kernels whose per-element accumulation order does not depend on the band
//! they run in, this makes every parallel result **bit-identical** to the
//! serial one at any thread count.
//!
//! # Thread-count resolution
//!
//! The worker count for a call is resolved in this order:
//!
//! 1. A scoped [`with_num_threads`] override on the calling thread
//!    (used by tests to pin a count without races).
//! 2. The process-wide value from [`set_num_threads`].
//! 3. The `QSNC_THREADS` environment variable, read once per process.
//! 4. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 runs the closure inline on the calling thread —
//! no threads are spawned, so serial behavior (and serial stack traces) are
//! recovered exactly with `QSNC_THREADS=1`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide thread count from [`set_num_threads`]; 0 means "unset".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Default resolved from `QSNC_THREADS` / available parallelism, once.
static DEFAULT: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Scoped per-thread override installed by [`with_num_threads`].
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Sets the process-wide worker thread count for all parallel kernels.
///
/// Passing 0 resets to the default (`QSNC_THREADS`, then available
/// parallelism). A count of 1 disables threading entirely.
pub fn set_num_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// Returns the worker thread count parallel kernels will use right now.
pub fn num_threads() -> usize {
    let tl = OVERRIDE.with(Cell::get);
    if tl > 0 {
        return tl;
    }
    let global = CONFIGURED.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    *DEFAULT.get_or_init(|| {
        std::env::var("QSNC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            })
    })
}

/// Runs `f` with the worker count pinned to `n` on the calling thread.
///
/// The override only affects parallel calls made from this thread while `f`
/// runs (it is restored even on panic), which lets concurrent tests pin
/// different counts without interfering through the global setting.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// Sizes of the per-worker pieces when `items` are split across `workers`:
/// as even as possible, larger pieces first, in order.
fn piece_sizes(items: usize, workers: usize) -> impl Iterator<Item = usize> {
    let base = items / workers;
    let rem = items % workers;
    (0..workers).map(move |i| base + usize::from(i < rem))
}

/// Splits `data` — `rows` rows of `row_len` elements — into contiguous row
/// bands, one per worker, and runs `f(first_row, band_rows, band)` on each
/// band concurrently.
///
/// Bands are disjoint `&mut` slices, so each output row is written by exactly
/// one thread. With one worker (or one row), `f` runs inline on the calling
/// thread over the whole slice.
///
/// # Panics
///
/// Panics if `data.len() != rows * row_len`, or propagates a worker panic.
pub fn par_bands_mut<T, F>(data: &mut [T], rows: usize, row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    assert_eq!(data.len(), rows * row_len, "par_bands_mut slice/geometry mismatch");
    let workers = num_threads().min(rows).max(1);
    if workers == 1 {
        f(0, rows, data);
        return;
    }
    crossbeam::thread::scope(|s| {
        let mut rest = data;
        let mut first_row = 0;
        for band_rows in piece_sizes(rows, workers) {
            let (band, tail) = rest.split_at_mut(band_rows * row_len);
            rest = tail;
            let row0 = first_row;
            let fr = &f;
            s.spawn(move || fr(row0, band_rows, band));
            first_row += band_rows;
        }
    });
}

/// Splits `items` into contiguous shards, one per worker, maps each shard
/// with `f(first_index, shard)` concurrently, and returns the results in
/// shard order.
///
/// Use this when each worker needs its own state (e.g. a cloned network):
/// build the state inside `f`, once per shard. With one worker the single
/// call runs inline. An empty input yields an empty result.
///
/// # Panics
///
/// Propagates a worker panic.
pub fn par_map_shards<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = num_threads().min(items.len()).max(1);
    if workers == 1 {
        return vec![f(0, items)];
    }
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        let mut start = 0;
        for shard_len in piece_sizes(items.len(), workers) {
            let shard = &items[start..start + shard_len];
            let first = start;
            let fr = &f;
            handles.push(s.spawn(move || fr(first, shard)));
            start += shard_len;
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piece_sizes_cover_exactly() {
        for items in 0..40 {
            for workers in 1..9 {
                let sizes: Vec<usize> = piece_sizes(items, workers).collect();
                assert_eq!(sizes.len(), workers);
                assert_eq!(sizes.iter().sum::<usize>(), items);
                // Monotone non-increasing, difference at most one.
                for w in sizes.windows(2) {
                    assert!(w[0] >= w[1] && w[0] - w[1] <= 1);
                }
            }
        }
    }

    #[test]
    fn with_num_threads_scopes_and_restores() {
        let outer = num_threads();
        let inner = with_num_threads(3, num_threads);
        assert_eq!(inner, 3);
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn with_num_threads_restores_on_panic() {
        let outer = num_threads();
        let caught = std::panic::catch_unwind(|| with_num_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn par_bands_mut_writes_every_row_once() {
        for threads in [1, 2, 3, 7] {
            with_num_threads(threads, || {
                let (rows, row_len) = (13, 5);
                let mut data = vec![0u32; rows * row_len];
                par_bands_mut(&mut data, rows, row_len, |first, n, band| {
                    for (r, row) in band.chunks_mut(row_len).enumerate() {
                        assert!(r < n);
                        row.fill((first + r) as u32);
                    }
                });
                for r in 0..rows {
                    assert!(data[r * row_len..(r + 1) * row_len].iter().all(|&v| v == r as u32));
                }
            });
        }
    }

    #[test]
    fn par_bands_mut_handles_empty_and_degenerate() {
        let mut empty: Vec<u32> = Vec::new();
        par_bands_mut(&mut empty, 0, 4, |_, _, _| {});
        par_bands_mut(&mut empty, 4, 0, |_, n, band| {
            assert_eq!(band.len(), 0);
            assert!(n <= 4);
        });
        let mut one = vec![0u32; 6];
        with_num_threads(8, || {
            par_bands_mut(&mut one, 1, 6, |first, n, band| {
                assert_eq!((first, n, band.len()), (0, 1, 6));
                band.fill(9);
            });
        });
        assert!(one.iter().all(|&v| v == 9));
    }

    #[test]
    fn par_map_shards_preserves_order() {
        for threads in [1, 2, 4, 9] {
            with_num_threads(threads, || {
                let items: Vec<usize> = (0..23).collect();
                let sums = par_map_shards(&items, |first, shard| {
                    assert_eq!(shard[0], first);
                    shard.iter().sum::<usize>()
                });
                assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
                assert_eq!(sums.len(), threads.min(items.len()));
            });
        }
        let none: Vec<usize> = Vec::new();
        let out: Vec<usize> = par_map_shards(&none, |_, s| s.len());
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_num_threads(2, || {
                let items = [1, 2, 3, 4];
                par_map_shards(&items, |first, _| {
                    if first == 0 {
                        panic!("worker failed");
                    }
                    0
                })
            })
        });
        assert!(caught.is_err());
    }
}
