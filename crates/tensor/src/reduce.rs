//! Reductions and statistics over tensors.

use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Largest element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Largest absolute value (0 for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.iter().map(|x| x.abs()).fold(0.0, f32::max)
    }

    /// Flat index of the largest element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Population variance of all elements (0 for an empty tensor).
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / self.len() as f32
    }

    /// Population standard deviation.
    pub fn std(&self) -> f32 {
        self.variance().sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f32 {
        self.iter().map(|x| x.abs()).sum()
    }

    /// L2 norm (Euclidean).
    pub fn norm_l2(&self) -> f32 {
        self.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Fraction of elements equal to zero.
    pub fn sparsity(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        self.iter().filter(|&&x| x == 0.0).count() as f32 / self.len() as f32
    }

    /// Counts elements for which `pred` holds.
    pub fn count(&self, pred: impl Fn(f32) -> bool) -> usize {
        self.iter().filter(|&&x| pred(x)).count()
    }

    /// Histogram of elements over `bins` equal-width buckets spanning
    /// `[lo, hi]`. Values outside the range are clamped into the edge bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn histogram(&self, lo: f32, hi: f32, bins: usize) -> Vec<usize> {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let mut counts = vec![0usize; bins];
        let width = (hi - lo) / bins as f32;
        for &x in self.iter() {
            let mut b = ((x - lo) / width) as isize;
            b = b.clamp(0, bins as isize - 1);
            counts[b as usize] += 1;
        }
        counts
    }

    /// Row-wise argmax for a rank-2 tensor: returns one index per row.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape().rank(), 2, "argmax_rows requires rank 2");
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let data = self.as_slice();
        (0..rows)
            .map(|r| {
                let row = &data[r * cols..(r + 1) * cols];
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

impl Tensor {
    /// Generic reduction along `axis`: combines elements with `f` starting
    /// from `init`, producing a tensor whose shape drops that axis.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn reduce_axis(&self, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let dims = self.dims();
        assert!(axis < dims.len(), "axis {axis} out of range for rank {}", dims.len());
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![init; outer * inner];
        let src = self.as_slice();
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                let dst = &mut out[o * inner..(o + 1) * inner];
                for (d, &s) in dst.iter_mut().zip(&src[base..base + inner]) {
                    *d = f(*d, s);
                }
            }
        }
        let mut new_dims: Vec<usize> = dims.to_vec();
        new_dims.remove(axis);
        Tensor::from_vec(out, new_dims)
    }

    /// Sum along `axis`, dropping it.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, 0.0, |acc, x| acc + x)
    }

    /// Mean along `axis`, dropping it.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()` or the axis is empty.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.dims()[axis];
        assert!(n > 0, "cannot take the mean of an empty axis");
        self.sum_axis(axis).scale(1.0 / n as f32)
    }

    /// Maximum along `axis`, dropping it.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn max_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max)
    }
}

/// Numerically stable row-wise softmax on a `[rows, cols]` tensor.
///
/// # Panics
///
/// Panics if `x` is not rank 2.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "softmax_rows requires rank 2");
    let (rows, cols) = (x.dims()[0], x.dims()[1]);
    let src = x.as_slice();
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for (i, &v) in row.iter().enumerate() {
            let e = (v - m).exp();
            out[r * cols + i] = e;
            denom += e;
        }
        for v in &mut out[r * cols..(r + 1) * cols] {
            *v /= denom;
        }
    }
    Tensor::from_vec(out, [rows, cols])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, 0.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.abs_max(), 3.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.norm_l1(), 6.0);
        assert!((t.norm_l2() - 14.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(t.sparsity(), 0.25);
        assert_eq!(t.count(|x| x > 0.0), 2);
    }

    #[test]
    fn variance_and_std() {
        let t = Tensor::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((t.variance() - 4.0).abs() < 1e-6);
        assert!((t.std() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let t = Tensor::from_slice(&[-5.0, 0.1, 0.9, 1.5, 2.5, 99.0]);
        let h = t.histogram(0.0, 3.0, 3);
        // bins: [0,1), [1,2), [2,3); -5 clamps into bin 0, 99 into bin 2.
        assert_eq!(h, vec![3, 1, 2]);
        assert_eq!(h.iter().sum::<usize>(), t.len());
    }

    #[test]
    fn argmax_rows_per_row() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], [2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], [2, 3]);
        let s = softmax_rows(&t);
        for r in 0..2 {
            let sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large but equal logits stay finite and uniform.
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-5);
        // Monotonic within a row.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    #[should_panic(expected = "argmax of empty tensor")]
    fn argmax_empty_panics() {
        Tensor::zeros([0]).argmax();
    }

    #[test]
    fn sum_axis_each_axis() {
        let t = Tensor::from_vec((1..=6).map(|v| v as f32).collect(), [2, 3]);
        // Rows: [1,2,3] and [4,5,6].
        let s0 = t.sum_axis(0);
        assert_eq!(s0.dims(), &[3]);
        assert_eq!(s0.as_slice(), &[5.0, 7.0, 9.0]);
        let s1 = t.sum_axis(1);
        assert_eq!(s1.dims(), &[2]);
        assert_eq!(s1.as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn mean_and_max_axis() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 2.0, 4.0], [2, 2]);
        assert_eq!(t.mean_axis(0).as_slice(), &[1.5, 4.5]);
        assert_eq!(t.max_axis(1).as_slice(), &[5.0, 4.0]);
    }

    #[test]
    fn axis_reduction_on_rank4() {
        let t = Tensor::ones([2, 3, 4, 5]);
        let r = t.sum_axis(1);
        assert_eq!(r.dims(), &[2, 4, 5]);
        assert!(r.iter().all(|&v| v == 3.0));
        // Chaining reductions reaches the scalar total.
        let total = t.sum_axis(0).sum_axis(0).sum_axis(0).sum_axis(0);
        assert_eq!(total.len(), 1);
        assert_eq!(total.as_slice()[0], 120.0);
    }

    #[test]
    #[should_panic(expected = "axis 2 out of range")]
    fn bad_axis_panics() {
        Tensor::zeros([2, 2]).sum_axis(2);
    }
}
