//! # qsnc-tensor
//!
//! Dense `f32` tensor math underpinning the qsnc reproduction of
//! *"Towards Accurate and High-Speed Spiking Neuromorphic Systems with Data
//! Quantization-Aware Deep Networks"* (Liu & Liu, DAC 2018).
//!
//! The crate provides exactly what the simulator stack above it needs — and
//! nothing more — so that every numerical path is short and auditable:
//!
//! - [`Shape`] / [`Tensor`]: row-major dense storage with explicit index
//!   arithmetic.
//! - Element-wise arithmetic and operator overloads (`arith`).
//! - Blocked GEMM, mat-vec, transpose, outer products ([`linalg`]).
//! - Convolution lowering: [`pad2d`], [`im2col`], [`col2im`], [`conv2d`]
//!   plus a direct reference convolution ([`conv`]).
//! - Reductions, histograms and a stable softmax ([`reduce`]).
//! - Deterministic RNG and Xavier/He initializers ([`init`]).
//! - Integer GEMM over packed `i8` weight codes for the quantized fast
//!   path ([`mod@igemm`]), and a thread-local scratch arena that makes
//!   steady-state inference allocation-free ([`scratch`]).
//! - Runtime-detected x86-64 SIMD micro-kernels behind the `QSNC_SIMD`
//!   env var ([`simd`]); every SIMD path is bit-identical to its scalar
//!   oracle.
//! - Persistent-pool parallelism primitives driving the kernels above
//!   ([`parallel`]); results are bit-identical at any thread count.
//!
//! # Examples
//!
//! ```
//! use qsnc_tensor::{conv2d, Conv2dSpec, Tensor, TensorRng};
//! use qsnc_tensor::init::he_normal;
//!
//! let mut rng = TensorRng::seed(0);
//! let image = qsnc_tensor::init::uniform([1, 1, 8, 8], 0.0, 1.0, &mut rng);
//! let filters = he_normal([4, 1, 3, 3], 9, &mut rng);
//! let feature_maps = conv2d(&image, &filters, None, Conv2dSpec::new(3, 1, 1));
//! assert_eq!(feature_maps.dims(), &[1, 4, 8, 8]);
//! ```

#![warn(missing_docs)]

mod arith;
pub mod conv;
pub mod igemm;
pub mod init;
pub mod linalg;
pub mod parallel;
pub mod reduce;
pub mod scratch;
mod shape;
pub mod simd;
mod tensor;

pub use conv::{col2im, conv2d, conv2d_direct, im2col, pad2d, unpad2d, Conv2dSpec};
pub use igemm::{igemm, igemm_conv, igemm_wx, im2col_i32, im2row_i32, PackedCodes};
pub use init::TensorRng;
pub use linalg::{
    dot, gemm, gemm_bt, gemm_kernel, gemm_serial, matmul, matmul_naive, matmul_serial, matvec,
    outer, set_gemm_kernel, transpose, GemmKernel,
};
pub use parallel::{num_threads, par_tiles, set_num_threads, with_num_threads};
pub use simd::{detected_simd, set_simd_level, simd_level, with_simd_level, SimdLevel};
pub use reduce::softmax_rows;
pub use shape::Shape;
pub use tensor::Tensor;
