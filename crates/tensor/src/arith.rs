//! Element-wise arithmetic, scalar broadcasting, and operator overloads.

use crate::tensor::Tensor;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

impl Tensor {
    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_t(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_t(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise multiplication (Hadamard product).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul_t(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise division.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn div_t(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `scalar` to every element.
    pub fn add_scalar(&self, scalar: f32) -> Tensor {
        self.map(|x| x + scalar)
    }

    /// Multiplies every element by `scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        self.map(|x| x * scalar)
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.iter_mut().zip(other.iter()) {
            *a += alpha * b;
        }
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Element-wise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Element-wise ReLU, `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Element-wise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        for x in self.iter_mut() {
            *x = value;
        }
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.$impl_method(rhs)
            }
        }
        impl $trait<Tensor> for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                (&self).$impl_method(&rhs)
            }
        }
    };
}

binop!(Add, add, add_t);
binop!(Sub, sub, sub_t);
binop!(Mul, mul, mul_t);
binop!(Div, div, div_t);

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

impl Add<f32> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: f32) -> Tensor {
        self.add_scalar(rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Tensor> for Tensor {
    fn sub_assign(&mut self, rhs: &Tensor) {
        self.axpy(-1.0, rhs);
    }
}

impl MulAssign<f32> for Tensor {
    fn mul_assign(&mut self, rhs: f32) {
        self.map_inplace(|x| x * rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[3.0, 5.0]);
        assert_eq!(a.add_t(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub_t(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul_t(&b).as_slice(), &[3.0, 10.0]);
        assert_eq!(b.div_t(&a).as_slice(), &[3.0, 2.5]);
    }

    #[test]
    fn operator_overloads() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * &b).as_slice(), &[3.0, 10.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn assign_ops() {
        let mut a = t(&[1.0, 2.0]);
        a += &t(&[1.0, 1.0]);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        a -= &t(&[1.0, 1.0]);
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        a *= 3.0;
        assert_eq!(a.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(0.5, &t(&[2.0, 4.0]));
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn unary_helpers() {
        let a = t(&[-2.0, 3.0]);
        assert_eq!(a.abs().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.relu().as_slice(), &[0.0, 3.0]);
        assert_eq!(a.clamp(-1.0, 1.0).as_slice(), &[-1.0, 1.0]);
        assert_eq!(a.square().as_slice(), &[4.0, 9.0]);
        assert_eq!(t(&[4.0]).sqrt().as_slice(), &[2.0]);
    }

    #[test]
    fn fill_overwrites() {
        let mut a = t(&[1.0, 2.0]);
        a.fill(9.0);
        assert_eq!(a.as_slice(), &[9.0, 9.0]);
    }
}
