//! Explicit x86-64 SIMD micro-kernels behind one-time runtime detection.
//!
//! Two kernel families live here, both selected through [`simd_level`]:
//!
//! - **Integer dot tiles** (`dot_tiles`): `i16 × i16 → i32` dot products
//!   over row-major operand panels, register-blocked four rows at a time and
//!   accumulated with `pmaddwd`-style pairwise multiply-adds
//!   (`_mm_madd_epi16` / `_mm256_madd_epi16`). This is the engine of the
//!   quantized fast path: spike counts widen losslessly to `i16`, weight
//!   codes are `i8`-ranged, and every intermediate stays exact (see the
//!   overflow analysis on `dot_tiles`), so the SIMD result is
//!   **bit-identical** to the scalar loop.
//! - **`f32` GEMM tiles** (`gemm_tile_f32`): a 4-row × 8-lane (AVX2) or
//!   4-row × 4-lane (SSE2) register tile that keeps each output element's
//!   accumulation order identical to the scalar kernel — ascending `k`,
//!   separate multiply then add, never FMA — so the vectorized product is
//!   bit-identical to the serial scalar oracle, not merely close.
//!
//! # Dispatch
//!
//! The effective [`SimdLevel`] is resolved per kernel call from, in order:
//! a scoped [`with_simd_level`] override on the calling thread, the
//! process-wide [`set_simd_level`] value, and the `QSNC_SIMD` environment
//! variable (`off`/`sse2`/`avx2`, read once per process) — always clamped
//! to what `is_x86_feature_detected!` reports (cached in a `OnceLock`), so
//! requesting AVX2 on a machine without it silently degrades rather than
//! faulting. Non-x86-64 targets always resolve to [`SimdLevel::Scalar`].

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Instruction-set tier the kernels may use, ordered weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar Rust only (also the only tier off x86-64).
    Scalar,
    /// 128-bit SSE2 kernels (baseline on every x86-64 CPU).
    Sse2,
    /// 256-bit AVX2 kernels, used only when runtime detection confirms them.
    Avx2,
}

/// Process-wide override from [`set_simd_level`]; [`LEVEL_UNSET`] defers to
/// the `QSNC_SIMD` environment default.
static LEVEL_OVERRIDE: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// Sentinel meaning "no [`set_simd_level`] call yet".
const LEVEL_UNSET: u8 = u8::MAX;

std::thread_local! {
    /// Scoped per-thread override installed by [`with_simd_level`].
    static TL_LEVEL: std::cell::Cell<u8> = const { std::cell::Cell::new(LEVEL_UNSET) };
}

fn level_from_u8(v: u8) -> SimdLevel {
    match v {
        0 => SimdLevel::Scalar,
        1 => SimdLevel::Sse2,
        _ => SimdLevel::Avx2,
    }
}

/// What the hardware supports, probed once per process.
pub fn detected_simd() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                SimdLevel::Avx2
            } else {
                // SSE2 is part of the x86-64 baseline; no probe needed.
                SimdLevel::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdLevel::Scalar
        }
    })
}

/// `QSNC_SIMD` environment default, read once per process. Unrecognized
/// values (including `auto`) mean "use everything detected".
fn env_level() -> SimdLevel {
    static ENV: OnceLock<SimdLevel> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("QSNC_SIMD").map(|v| v.trim().to_ascii_lowercase()).as_deref() {
            Ok("off") | Ok("scalar") | Ok("none") => SimdLevel::Scalar,
            Ok("sse2") => SimdLevel::Sse2,
            Ok("avx2") => SimdLevel::Avx2,
            _ => detected_simd(),
        }
    })
}

/// Sets (or with `None` clears) the process-wide [`SimdLevel`] cap,
/// overriding the `QSNC_SIMD` environment default. Requests above what the
/// machine supports are clamped at use, never trusted.
pub fn set_simd_level(level: Option<SimdLevel>) {
    let v = match level {
        None => LEVEL_UNSET,
        Some(SimdLevel::Scalar) => 0,
        Some(SimdLevel::Sse2) => 1,
        Some(SimdLevel::Avx2) => 2,
    };
    LEVEL_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Runs `f` with the SIMD level pinned to `level` on the calling thread.
///
/// The override only affects kernel calls made from this thread while `f`
/// runs (restored even on panic), which lets concurrent tests pin different
/// levels without interfering through the global setting. Worker threads
/// spawned by [`crate::parallel`] do **not** inherit it — kernels resolve
/// the level once per call, before fanning out, precisely so one call uses
/// one level everywhere.
pub fn with_simd_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_LEVEL.with(|c| c.set(self.0));
        }
    }
    let v = match level {
        SimdLevel::Scalar => 0,
        SimdLevel::Sse2 => 1,
        SimdLevel::Avx2 => 2,
    };
    let _guard = Restore(TL_LEVEL.with(|c| c.replace(v)));
    f()
}

/// Effective SIMD level for kernel calls on this thread right now: scoped
/// override, else process-wide [`set_simd_level`], else `QSNC_SIMD`, else
/// full detection — clamped to [`detected_simd`] in every case.
pub fn simd_level() -> SimdLevel {
    let requested = {
        let tl = TL_LEVEL.with(std::cell::Cell::get);
        if tl != LEVEL_UNSET {
            level_from_u8(tl)
        } else {
            let global = LEVEL_OVERRIDE.load(Ordering::Relaxed);
            if global != LEVEL_UNSET {
                level_from_u8(global)
            } else {
                env_level()
            }
        }
    };
    requested.min(detected_simd())
}

// ---------------------------------------------------------------------------
// Integer dot-product tiles
// ---------------------------------------------------------------------------

/// Scalar reference for the [`dot_tiles`] contract; also the dispatch target
/// at [`SimdLevel::Scalar`] and off x86-64.
fn dot_tiles_scalar(k: usize, fast: &[i16], nf: usize, slow: &[i16], ns: usize, c: &mut [i32], stride: usize) {
    for s in 0..ns {
        let srow = &slow[s * k..(s + 1) * k];
        let crow = &mut c[s * stride..s * stride + nf];
        for (f, cv) in crow.iter_mut().enumerate() {
            let frow = &fast[f * k..(f + 1) * k];
            let mut acc = 0i32;
            for (&sv, &fv) in srow.iter().zip(frow.iter()) {
                acc = acc.wrapping_add(sv as i32 * fv as i32);
            }
            *cv = cv.wrapping_add(acc);
        }
    }
}

/// `c[s·stride + f] += dot(fast[f], slow[s])` over row-major `i16` panels:
/// `fast` holds `nf` rows of length `k`, `slow` holds `ns` rows, and the
/// `fast` index is the unit-stride (register-tiled) output dimension.
///
/// One kernel serves both product orientations of the integer fast path:
/// the row-major `igemm` (`fast` = weight-code rows, `slow` = spike-count
/// rows, `stride = n`) and the conv lowering (`fast` = im2row pixel rows,
/// `slow` = weight-code rows, `stride = pix`).
///
/// **Exactness.** Every product `|fast·slow| ≤ 32767 · 32767` fits `i32`,
/// and `pmaddwd`'s pairwise sums stay exact whenever one operand family is
/// `i8`-ranged (the packed weight codes: `|w| ≤ 127 ⇒ |pair| < 2³³⁄₂⁹ < 2³¹`).
/// Lane accumulation and the horizontal reduction use wrapping `i32` adds —
/// associative and commutative mod 2³² — so the result equals the scalar
/// ascending-`k` loop bit for bit. Callers keep true magnitudes below `2³¹`
/// (the engine proves `< 2²⁴` at compile time), making the wrapping
/// unobservable.
///
/// # Panics
///
/// Panics if a panel slice or `c` is shorter than the stated geometry
/// implies (`fast ≥ nf·k`, `slow ≥ ns·k`, `c ≥ (ns−1)·stride + nf` when
/// `ns > 0`, `stride ≥ nf`).
#[allow(clippy::too_many_arguments)] // flat scalars keep the hot kernel call free of struct plumbing
pub(crate) fn dot_tiles(
    level: SimdLevel,
    k: usize,
    fast: &[i16],
    nf: usize,
    slow: &[i16],
    ns: usize,
    c: &mut [i32],
    stride: usize,
) {
    assert!(fast.len() >= nf * k, "dot_tiles fast panel too short");
    assert!(slow.len() >= ns * k, "dot_tiles slow panel too short");
    assert!(stride >= nf, "dot_tiles stride narrower than fast rows");
    if ns > 0 {
        assert!(c.len() >= (ns - 1) * stride + nf, "dot_tiles output too short");
    }
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: slice geometry was checked above; the target features are
        // guaranteed by `level`, which is always clamped to `detected_simd`.
        SimdLevel::Avx2 => unsafe { x86::dot_tiles_avx2(k, fast, nf, slow, ns, c, stride) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above; SSE2 is part of the x86-64 baseline.
        SimdLevel::Sse2 => unsafe { x86::dot_tiles_sse2(k, fast, nf, slow, ns, c, stride) },
        _ => dot_tiles_scalar(k, fast, nf, slow, ns, c, stride),
    }
}

// ---------------------------------------------------------------------------
// Weights-times-columns axpy strips
// ---------------------------------------------------------------------------

/// Scalar reference for the [`wx_axpy`] contract; also the dispatch target
/// for every level without a 32-bit lane multiply.
fn wx_axpy_scalar(out_dim: usize, k: usize, pix: usize, w16: &[i16], x: &[i32], c: &mut [i32]) {
    for j in 0..out_dim {
        let crow = &mut c[j * pix..(j + 1) * pix];
        for kk in 0..k {
            let wv = w16[j * k + kk] as i32;
            if wv == 0 {
                continue;
            }
            let xrow = &x[kk * pix..(kk + 1) * pix];
            for (cv, &xv) in crow.iter_mut().zip(xrow.iter()) {
                *cv = cv.wrapping_add(wv.wrapping_mul(xv));
            }
        }
    }
}

/// `c[j·pix + p] += w16[j·k + kk] · x[kk·pix + p]` — the weights-times-
/// columns product on its natural `[k, pix]` column-matrix layout,
/// vectorized over contiguous pixel strips with the weight code broadcast
/// into every lane. Unlike [`dot_tiles`] this needs **no transpose and no
/// `i16` bound on the counts**: the 32-bit lane products (`vpmulld`) are
/// wrapping `i32` arithmetic, exact mod 2³² for any operands. For
/// `i16`-ranged counts prefer the packed-pair route
/// ([`pack_wx_pairs`] + [`wx_axpy_packed`]), which runs twice the MACs per
/// instruction.
///
/// Only AVX2 has a packed 32-bit multiply; SSE2 dispatches to the scalar
/// body, so callers should prefer the [`dot_tiles`] lowering below
/// [`SimdLevel::Avx2`]. Wrapping adds are associative and commutative
/// mod 2³², and zero codes contribute exact zeros, so every dispatch
/// target is bit-identical to the scalar ascending-`k` loop.
///
/// # Panics
///
/// Panics if `w16`, `x` or `c` is shorter than the stated geometry
/// (`w16 ≥ out_dim·k`, `x ≥ k·pix`, `c ≥ out_dim·pix`).
pub(crate) fn wx_axpy(
    level: SimdLevel,
    out_dim: usize,
    k: usize,
    pix: usize,
    w16: &[i16],
    x: &[i32],
    c: &mut [i32],
) {
    assert!(w16.len() >= out_dim * k, "wx_axpy weight panel too short");
    assert!(x.len() >= k * pix, "wx_axpy column matrix too short");
    assert!(c.len() >= out_dim * pix, "wx_axpy output too short");
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: slice geometry was checked above; AVX2 is guaranteed by
        // `level`, which is always clamped to `detected_simd`.
        SimdLevel::Avx2 => unsafe { x86::wx_axpy_mullo_avx2(out_dim, k, pix, w16, x, c) },
        _ => wx_axpy_scalar(out_dim, k, pix, w16, x, c),
    }
}

/// Packs `ceil(k/2)` adjacent-row pairs of the `[k, pix]` column matrix
/// into interleaved `i16` halves: output word `kkp·pix + p` holds
/// `(x[2kkp, p], x[2kkp+1, p])` in its low/high 16 bits (the second half
/// zero when `k` is odd and `kkp` is the last pair). This is the operand
/// layout [`wx_axpy_packed`]'s `pmaddwd` consumes, and — unlike the
/// transpose the dot lowering needs — it is a cheap sequential pass whose
/// cost amortizes over every output row of the product.
///
/// The `i16` range check is fused into the pass: returns `true` when every
/// `x` value fit (the fast-path engine's spike counts are ≤ 255, so this is
/// the steady state), `false` when any value would truncate — in which case
/// `xpk`'s contents are unspecified and the caller must take a wider route.
///
/// # Panics
///
/// Panics if `x` is shorter than `k·pix` or `xpk` than `ceil(k/2)·pix`.
pub(crate) fn pack_wx_pairs(
    level: SimdLevel,
    k: usize,
    pix: usize,
    x: &[i32],
    xpk: &mut [i32],
) -> bool {
    let kp = k.div_ceil(2);
    assert!(x.len() >= k * pix, "pack_wx_pairs column matrix too short");
    assert!(xpk.len() >= kp * pix, "pack_wx_pairs output too short");
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: slice geometry was checked above; AVX2 is guaranteed by
        // `level`, which is always clamped to `detected_simd`.
        SimdLevel::Avx2 => unsafe { x86::pack_wx_pairs_avx2(k, pix, x, xpk) },
        _ => {
            let mut ok = true;
            for kkp in 0..kp {
                for p in 0..pix {
                    let a = x[2 * kkp * pix + p];
                    let b = if 2 * kkp + 1 < k { x[(2 * kkp + 1) * pix + p] } else { 0 };
                    ok &= a == a as i16 as i32 && b == b as i16 as i32;
                    xpk[kkp * pix + p] = ((a as u32 & 0xFFFF) | ((b as u32 & 0xFFFF) << 16)) as i32;
                }
            }
            ok
        }
    }
}

/// `pmaddwd` weights-times-columns strips over pre-packed pair operands:
/// `c[j·pix + p] += Σ_kkp madd(xpk[kkp·pix + p], wpairs[j·kp + kkp])`,
/// where both sides hold two `i16` values per `i32` word ([`pack_wx_pairs`]
/// for the counts, [`crate::igemm::PackedCodes`]'s pair panel for the
/// weights). One multiply covers two `k` steps of eight pixels — 16 MACs —
/// and each output element is loaded and stored once per call.
///
/// **Exactness.** Each `pmaddwd` pair sum is exact because the weight side
/// is `i8`-ranged (`|w| ≤ 127 ⇒ |pair sum| ≤ 2·32767·127 < 2³¹`); lane
/// accumulation uses wrapping `i32` adds, associative and commutative
/// mod 2³² — bit-identical to the scalar ascending-`k` loop. All-zero
/// weight words skip their pass, adding exact zeros.
///
/// # Panics
///
/// Panics if a slice is shorter than the stated geometry
/// (`wpairs ≥ out_dim·kp`, `xpk ≥ kp·pix`, `c ≥ out_dim·pix`).
pub(crate) fn wx_axpy_packed(
    level: SimdLevel,
    out_dim: usize,
    kp: usize,
    pix: usize,
    wpairs: &[i32],
    xpk: &[i32],
    c: &mut [i32],
) {
    assert!(wpairs.len() >= out_dim * kp, "wx_axpy_packed weight panel too short");
    assert!(xpk.len() >= kp * pix, "wx_axpy_packed column matrix too short");
    assert!(c.len() >= out_dim * pix, "wx_axpy_packed output too short");
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: slice geometry was checked above; AVX2 is guaranteed by
        // `level`, which is always clamped to `detected_simd`.
        SimdLevel::Avx2 => unsafe { x86::wx_axpy_packed_avx2(out_dim, kp, pix, wpairs, xpk, c) },
        _ => {
            // Scalar reference decoding the packed pair format; dispatch
            // target off x86-64 (unreachable in practice — the packed route
            // is only chosen at `Avx2` — but kept total and testable).
            for j in 0..out_dim {
                let crow = &mut c[j * pix..(j + 1) * pix];
                for kkp in 0..kp {
                    let wv = wpairs[j * kp + kkp];
                    if wv == 0 {
                        continue;
                    }
                    let w0 = (wv as u32 & 0xFFFF) as u16 as i16 as i32;
                    let w1 = ((wv as u32 >> 16) as u16 as i16) as i32;
                    let xrow = &xpk[kkp * pix..kkp * pix + pix];
                    for (cv, &xv) in crow.iter_mut().zip(xrow.iter()) {
                        let x0 = (xv as u32 & 0xFFFF) as u16 as i16 as i32;
                        let x1 = ((xv as u32 >> 16) as u16 as i16) as i32;
                        *cv = cv
                            .wrapping_add(w0.wrapping_mul(x0))
                            .wrapping_add(w1.wrapping_mul(x1));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// f32 GEMM register tiles
// ---------------------------------------------------------------------------

/// Scalar reference for the [`gemm_tile_f32`] contract: for every output
/// element, ascending-`k` accumulation with separate multiply then add —
/// the exact operation sequence of the blocked scalar kernel in `linalg`.
///
/// # Safety
///
/// `a` must be valid for reads at `i·lda + kk` (`i < mb`, `kk < k`), `b` at
/// `kk·ldb + j` (`j < nb`), and `c` valid for reads and writes at
/// `i·ldc + j`, with no element of that `c` index set aliased by any other
/// concurrently running tile.
#[allow(clippy::too_many_arguments)] // flat pointer+stride form matches the dispatching callers
unsafe fn gemm_tile_f32_scalar(
    mb: usize,
    k: usize,
    nb: usize,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
) {
    for i in 0..mb {
        for j in 0..nb {
            let mut acc = *c.add(i * ldc + j);
            for kk in 0..k {
                acc += *a.add(i * lda + kk) * *b.add(kk * ldb + j);
            }
            *c.add(i * ldc + j) = acc;
        }
    }
}

/// Dense `f32` GEMM tile: `c[mb×nb] += a[mb×k] · b[k×nb]` on strided panels,
/// register-tiled 4 rows × one vector of columns, dispatched on `level`.
///
/// Each output element accumulates in ascending `k` with a separate IEEE
/// multiply and add per term (never FMA), which is the identical operation
/// sequence the scalar kernel performs — so the result is **bit-identical**
/// to the scalar oracle at every level, and disjoint tiles may compute
/// concurrently without affecting any bit of the output.
///
/// # Safety
///
/// `a` must be valid for reads at `i·lda + kk` for all `i < mb`, `kk < k`;
/// `b` for reads at `kk·ldb + j` for all `j < nb`; `c` for reads and writes
/// at `i·ldc + j`. When tiles run concurrently, their `c` index sets must be
/// disjoint (the parallel layer partitions the output grid to guarantee
/// this).
#[allow(clippy::too_many_arguments)] // flat pointer+stride form keeps the hot kernel free of view structs
pub(crate) unsafe fn gemm_tile_f32(
    level: SimdLevel,
    mb: usize,
    k: usize,
    nb: usize,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
) {
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: forwarded caller contract; `level` is clamped to detection.
        SimdLevel::Avx2 => x86::gemm_tile_f32_avx2(mb, k, nb, a, lda, b, ldb, c, ldc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: forwarded caller contract; SSE2 is baseline on x86-64.
        SimdLevel::Sse2 => x86::gemm_tile_f32_sse2(mb, k, nb, a, lda, b, ldb, c, ldc),
        _ => gemm_tile_f32_scalar(mb, k, nb, a, lda, b, ldb, c, ldc),
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `std::arch` kernel bodies. Every function here is `unsafe` on two
    //! axes: the raw-slice geometry its caller already validated, and the
    //! `#[target_feature]` contract that the CPU supports the instruction
    //! set — upheld because dispatch clamps to `detected_simd()`.

    use std::arch::x86_64::*;

    /// Reduces four 8-lane `i32` accumulators to their four lane sums.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn hsum4_avx2(a: __m256i, b: __m256i, c: __m256i, d: __m256i) -> [i32; 4] {
        let t01 = _mm256_hadd_epi32(a, b);
        let t23 = _mm256_hadd_epi32(c, d);
        let t = _mm256_hadd_epi32(t01, t23);
        let lo = _mm256_castsi256_si128(t);
        let hi = _mm256_extracti128_si256(t, 1);
        let s = _mm_add_epi32(lo, hi);
        let mut out = [0i32; 4];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, s);
        out
    }

    /// Reduces one 8-lane `i32` accumulator to its lane sum.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn hsum1_avx2(a: __m256i) -> i32 {
        let lo = _mm256_castsi256_si128(a);
        let hi = _mm256_extracti128_si256(a, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }

    /// AVX2 [`super::dot_tiles`]: 16 `i16` lanes per step, four `fast` rows
    /// per register tile sharing each `slow`-row load.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and the slice geometry checked by the safe dispatcher
    /// (`fast ≥ nf·k`, `slow ≥ ns·k`, `c ≥ (ns−1)·stride + nf`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_tiles_avx2(
        k: usize,
        fast: &[i16],
        nf: usize,
        slow: &[i16],
        ns: usize,
        c: &mut [i32],
        stride: usize,
    ) {
        let fp = fast.as_ptr();
        let sp = slow.as_ptr();
        let cp = c.as_mut_ptr();
        for s in 0..ns {
            let srow = sp.add(s * k);
            let crow = cp.add(s * stride);
            let mut f = 0;
            while f + 4 <= nf {
                let r0 = fp.add(f * k);
                let r1 = fp.add((f + 1) * k);
                let r2 = fp.add((f + 2) * k);
                let r3 = fp.add((f + 3) * k);
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                let mut acc2 = _mm256_setzero_si256();
                let mut acc3 = _mm256_setzero_si256();
                let mut kk = 0;
                while kk + 16 <= k {
                    let sv = _mm256_loadu_si256(srow.add(kk) as *const __m256i);
                    acc0 = _mm256_add_epi32(
                        acc0,
                        _mm256_madd_epi16(sv, _mm256_loadu_si256(r0.add(kk) as *const __m256i)),
                    );
                    acc1 = _mm256_add_epi32(
                        acc1,
                        _mm256_madd_epi16(sv, _mm256_loadu_si256(r1.add(kk) as *const __m256i)),
                    );
                    acc2 = _mm256_add_epi32(
                        acc2,
                        _mm256_madd_epi16(sv, _mm256_loadu_si256(r2.add(kk) as *const __m256i)),
                    );
                    acc3 = _mm256_add_epi32(
                        acc3,
                        _mm256_madd_epi16(sv, _mm256_loadu_si256(r3.add(kk) as *const __m256i)),
                    );
                    kk += 16;
                }
                let mut sums = hsum4_avx2(acc0, acc1, acc2, acc3);
                while kk < k {
                    let sv = *srow.add(kk) as i32;
                    sums[0] = sums[0].wrapping_add(sv * *r0.add(kk) as i32);
                    sums[1] = sums[1].wrapping_add(sv * *r1.add(kk) as i32);
                    sums[2] = sums[2].wrapping_add(sv * *r2.add(kk) as i32);
                    sums[3] = sums[3].wrapping_add(sv * *r3.add(kk) as i32);
                    kk += 1;
                }
                for (t, &sum) in sums.iter().enumerate() {
                    let cv = crow.add(f + t);
                    *cv = (*cv).wrapping_add(sum);
                }
                f += 4;
            }
            while f < nf {
                let row = fp.add(f * k);
                let mut acc = _mm256_setzero_si256();
                let mut kk = 0;
                while kk + 16 <= k {
                    let sv = _mm256_loadu_si256(srow.add(kk) as *const __m256i);
                    let fv = _mm256_loadu_si256(row.add(kk) as *const __m256i);
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(sv, fv));
                    kk += 16;
                }
                let mut sum = hsum1_avx2(acc);
                while kk < k {
                    sum = sum.wrapping_add(*srow.add(kk) as i32 * *row.add(kk) as i32);
                    kk += 1;
                }
                let cv = crow.add(f);
                *cv = (*cv).wrapping_add(sum);
                f += 1;
            }
        }
    }

    /// Reduces four 4-lane `i32` accumulators to their four lane sums via an
    /// unpack transpose (SSE2 has no integer `hadd`).
    ///
    /// # Safety
    ///
    /// Requires SSE2 (always present on x86-64).
    #[target_feature(enable = "sse2")]
    unsafe fn hsum4_sse2(a: __m128i, b: __m128i, c: __m128i, d: __m128i) -> [i32; 4] {
        let t0 = _mm_unpacklo_epi32(a, b); // a0 b0 a1 b1
        let t1 = _mm_unpackhi_epi32(a, b); // a2 b2 a3 b3
        let t2 = _mm_unpacklo_epi32(c, d);
        let t3 = _mm_unpackhi_epi32(c, d);
        let s01 = _mm_add_epi32(t0, t1); // a02 b02 a13 b13
        let s23 = _mm_add_epi32(t2, t3);
        let u0 = _mm_unpacklo_epi64(s01, s23); // a02 b02 c02 d02
        let u1 = _mm_unpackhi_epi64(s01, s23); // a13 b13 c13 d13
        let s = _mm_add_epi32(u0, u1);
        let mut out = [0i32; 4];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, s);
        out
    }

    /// Reduces one 4-lane `i32` accumulator to its lane sum.
    ///
    /// # Safety
    ///
    /// Requires SSE2 (always present on x86-64).
    #[target_feature(enable = "sse2")]
    unsafe fn hsum1_sse2(a: __m128i) -> i32 {
        let s = _mm_add_epi32(a, _mm_shuffle_epi32(a, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }

    /// SSE2 [`super::dot_tiles`]: 8 `i16` lanes per step, four `fast` rows
    /// per register tile.
    ///
    /// # Safety
    ///
    /// Requires the slice geometry checked by the safe dispatcher; SSE2 is
    /// part of the x86-64 baseline.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dot_tiles_sse2(
        k: usize,
        fast: &[i16],
        nf: usize,
        slow: &[i16],
        ns: usize,
        c: &mut [i32],
        stride: usize,
    ) {
        let fp = fast.as_ptr();
        let sp = slow.as_ptr();
        let cp = c.as_mut_ptr();
        for s in 0..ns {
            let srow = sp.add(s * k);
            let crow = cp.add(s * stride);
            let mut f = 0;
            while f + 4 <= nf {
                let r0 = fp.add(f * k);
                let r1 = fp.add((f + 1) * k);
                let r2 = fp.add((f + 2) * k);
                let r3 = fp.add((f + 3) * k);
                let mut acc0 = _mm_setzero_si128();
                let mut acc1 = _mm_setzero_si128();
                let mut acc2 = _mm_setzero_si128();
                let mut acc3 = _mm_setzero_si128();
                let mut kk = 0;
                while kk + 8 <= k {
                    let sv = _mm_loadu_si128(srow.add(kk) as *const __m128i);
                    acc0 = _mm_add_epi32(
                        acc0,
                        _mm_madd_epi16(sv, _mm_loadu_si128(r0.add(kk) as *const __m128i)),
                    );
                    acc1 = _mm_add_epi32(
                        acc1,
                        _mm_madd_epi16(sv, _mm_loadu_si128(r1.add(kk) as *const __m128i)),
                    );
                    acc2 = _mm_add_epi32(
                        acc2,
                        _mm_madd_epi16(sv, _mm_loadu_si128(r2.add(kk) as *const __m128i)),
                    );
                    acc3 = _mm_add_epi32(
                        acc3,
                        _mm_madd_epi16(sv, _mm_loadu_si128(r3.add(kk) as *const __m128i)),
                    );
                    kk += 8;
                }
                let mut sums = hsum4_sse2(acc0, acc1, acc2, acc3);
                while kk < k {
                    let sv = *srow.add(kk) as i32;
                    sums[0] = sums[0].wrapping_add(sv * *r0.add(kk) as i32);
                    sums[1] = sums[1].wrapping_add(sv * *r1.add(kk) as i32);
                    sums[2] = sums[2].wrapping_add(sv * *r2.add(kk) as i32);
                    sums[3] = sums[3].wrapping_add(sv * *r3.add(kk) as i32);
                    kk += 1;
                }
                for (t, &sum) in sums.iter().enumerate() {
                    let cv = crow.add(f + t);
                    *cv = (*cv).wrapping_add(sum);
                }
                f += 4;
            }
            while f < nf {
                let row = fp.add(f * k);
                let mut acc = _mm_setzero_si128();
                let mut kk = 0;
                while kk + 8 <= k {
                    let sv = _mm_loadu_si128(srow.add(kk) as *const __m128i);
                    let fv = _mm_loadu_si128(row.add(kk) as *const __m128i);
                    acc = _mm_add_epi32(acc, _mm_madd_epi16(sv, fv));
                    kk += 8;
                }
                let mut sum = hsum1_sse2(acc);
                while kk < k {
                    sum = sum.wrapping_add(*srow.add(kk) as i32 * *row.add(kk) as i32);
                    kk += 1;
                }
                let cv = crow.add(f);
                *cv = (*cv).wrapping_add(sum);
                f += 1;
            }
        }
    }

    /// AVX2 [`super::pack_wx_pairs`]: interleaves adjacent `i32` rows into
    /// `i16` pair words with `and`/`slli`/`or` — exact when the values fit
    /// `i16` (a negative value's low 16 bits *are* its `i16` two's
    /// complement). The range check is fused into the same pass: each
    /// vector is compared against its own 16-bit sign extension
    /// (`v == (v << 16) >> 16` arithmetically ⟺ `v` fits `i16`) and the
    /// equality masks are AND-accumulated, so no separate scan of the
    /// operand is needed. Returns `false` — and the packed output is
    /// garbage — if any value was out of range. Sequential loads and
    /// stores throughout; an odd final row pairs against zeros.
    ///
    /// # Safety
    ///
    /// Caller must guarantee `x.len() ≥ k·pix`, `xpk.len() ≥ ceil(k/2)·pix`,
    /// and that the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pack_wx_pairs_avx2(
        k: usize,
        pix: usize,
        x: &[i32],
        xpk: &mut [i32],
    ) -> bool {
        let lo_mask = _mm256_set1_epi32(0xFFFF);
        let mut ok_acc = _mm256_set1_epi32(-1);
        let mut ok_tail = true;
        for kkp in 0..k.div_ceil(2) {
            let r0 = x.as_ptr().add(2 * kkp * pix);
            let has_b = 2 * kkp + 1 < k;
            let r1 = x.as_ptr().add(if has_b { (2 * kkp + 1) * pix } else { 2 * kkp * pix });
            let dst = xpk.as_mut_ptr().add(kkp * pix);
            let mut p = 0usize;
            while p + 8 <= pix {
                let va = _mm256_loadu_si256(r0.add(p) as *const __m256i);
                let vb = if has_b {
                    _mm256_loadu_si256(r1.add(p) as *const __m256i)
                } else {
                    _mm256_setzero_si256()
                };
                let sa = _mm256_srai_epi32(_mm256_slli_epi32(va, 16), 16);
                let sb = _mm256_srai_epi32(_mm256_slli_epi32(vb, 16), 16);
                ok_acc = _mm256_and_si256(ok_acc, _mm256_cmpeq_epi32(va, sa));
                ok_acc = _mm256_and_si256(ok_acc, _mm256_cmpeq_epi32(vb, sb));
                let packed =
                    _mm256_or_si256(_mm256_and_si256(va, lo_mask), _mm256_slli_epi32(vb, 16));
                _mm256_storeu_si256(dst.add(p) as *mut __m256i, packed);
                p += 8;
            }
            while p < pix {
                let a = *r0.add(p);
                let b = if has_b { *r1.add(p) } else { 0 };
                ok_tail &= a == a as i16 as i32 && b == b as i16 as i32;
                *dst.add(p) = ((a as u32 & 0xFFFF) | ((b as u32 & 0xFFFF) << 16)) as i32;
                p += 1;
            }
        }
        ok_tail && _mm256_movemask_epi8(ok_acc) == -1
    }

    /// Scalar tail of one output row of the packed axpy, decoding the pair
    /// words, over pixels `[p0, pix)`.
    ///
    /// # Safety
    ///
    /// `wrow` must be valid for `kp` reads, `xp` for `kp·pix` and `crow`
    /// for `pix` elements.
    unsafe fn wx_axpy_packed_tail(
        kp: usize,
        pix: usize,
        p0: usize,
        wrow: *const i32,
        xp: *const i32,
        crow: *mut i32,
    ) {
        for kkp in 0..kp {
            let wv = *wrow.add(kkp);
            if wv == 0 {
                continue;
            }
            let w0 = (wv as u32 & 0xFFFF) as u16 as i16 as i32;
            let w1 = ((wv as u32 >> 16) as u16 as i16) as i32;
            let xrow = xp.add(kkp * pix);
            for pp in p0..pix {
                let xv = *xrow.add(pp);
                let x0 = (xv as u32 & 0xFFFF) as u16 as i16 as i32;
                let x1 = ((xv as u32 >> 16) as u16 as i16) as i32;
                let cv = crow.add(pp);
                *cv = (*cv)
                    .wrapping_add(w0.wrapping_mul(x0))
                    .wrapping_add(w1.wrapping_mul(x1));
            }
        }
    }

    /// AVX2 [`super::wx_axpy_packed`]: blocks of **4 output rows** share
    /// each load of the packed count panel — the panel (often hundreds of
    /// KiB) streams `out_dim/4` times instead of `out_dim` times, which is
    /// what makes this kernel cache-bound-proof at conv shapes. Within a
    /// block, a 16-pixel strip holds 8 accumulators in registers across all
    /// `kp` pairs; each pair costs two loads plus one broadcast, `pmaddwd`,
    /// and add per row (16 MACs per multiply). Remaining rows and pixels fall
    /// to single-row strips and a scalar tail. All-zero weight words skip
    /// their row's pass, and each `c` element is loaded and stored once.
    ///
    /// # Safety
    ///
    /// Caller must guarantee `wpairs.len() ≥ out_dim·kp`,
    /// `xpk.len() ≥ kp·pix`, `c.len() ≥ out_dim·pix`, and that the CPU
    /// supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn wx_axpy_packed_avx2(
        out_dim: usize,
        kp: usize,
        pix: usize,
        wpairs: &[i32],
        xpk: &[i32],
        c: &mut [i32],
    ) {
        let xp = xpk.as_ptr();
        let wp = wpairs.as_ptr();
        let cp = c.as_mut_ptr();
        let mut j = 0usize;
        while j + 4 <= out_dim {
            let w0r = wp.add(j * kp);
            let w1r = wp.add((j + 1) * kp);
            let w2r = wp.add((j + 2) * kp);
            let w3r = wp.add((j + 3) * kp);
            let c0 = cp.add(j * pix);
            let c1 = cp.add((j + 1) * pix);
            let c2 = cp.add((j + 2) * pix);
            let c3 = cp.add((j + 3) * pix);
            let mut p = 0usize;
            while p + 16 <= pix {
                let mut a00 = _mm256_loadu_si256(c0.add(p) as *const __m256i);
                let mut a01 = _mm256_loadu_si256(c0.add(p + 8) as *const __m256i);
                let mut a10 = _mm256_loadu_si256(c1.add(p) as *const __m256i);
                let mut a11 = _mm256_loadu_si256(c1.add(p + 8) as *const __m256i);
                let mut a20 = _mm256_loadu_si256(c2.add(p) as *const __m256i);
                let mut a21 = _mm256_loadu_si256(c2.add(p + 8) as *const __m256i);
                let mut a30 = _mm256_loadu_si256(c3.add(p) as *const __m256i);
                let mut a31 = _mm256_loadu_si256(c3.add(p + 8) as *const __m256i);
                // Branchless: a zero weight pair contributes a zero `pmaddwd`
                // result, so testing for it costs more than computing it. The
                // broadcasts compile to `vpbroadcastd ymm, m32` (one µop, no
                // scalar detour).
                for kkp in 0..kp {
                    let base = xp.add(kkp * pix + p);
                    let v0 = _mm256_loadu_si256(base as *const __m256i);
                    let v1 = _mm256_loadu_si256(base.add(8) as *const __m256i);
                    let p0 = _mm256_set1_epi32(*w0r.add(kkp));
                    a00 = _mm256_add_epi32(a00, _mm256_madd_epi16(v0, p0));
                    a01 = _mm256_add_epi32(a01, _mm256_madd_epi16(v1, p0));
                    let p1 = _mm256_set1_epi32(*w1r.add(kkp));
                    a10 = _mm256_add_epi32(a10, _mm256_madd_epi16(v0, p1));
                    a11 = _mm256_add_epi32(a11, _mm256_madd_epi16(v1, p1));
                    let p2 = _mm256_set1_epi32(*w2r.add(kkp));
                    a20 = _mm256_add_epi32(a20, _mm256_madd_epi16(v0, p2));
                    a21 = _mm256_add_epi32(a21, _mm256_madd_epi16(v1, p2));
                    let p3 = _mm256_set1_epi32(*w3r.add(kkp));
                    a30 = _mm256_add_epi32(a30, _mm256_madd_epi16(v0, p3));
                    a31 = _mm256_add_epi32(a31, _mm256_madd_epi16(v1, p3));
                }
                _mm256_storeu_si256(c0.add(p) as *mut __m256i, a00);
                _mm256_storeu_si256(c0.add(p + 8) as *mut __m256i, a01);
                _mm256_storeu_si256(c1.add(p) as *mut __m256i, a10);
                _mm256_storeu_si256(c1.add(p + 8) as *mut __m256i, a11);
                _mm256_storeu_si256(c2.add(p) as *mut __m256i, a20);
                _mm256_storeu_si256(c2.add(p + 8) as *mut __m256i, a21);
                _mm256_storeu_si256(c3.add(p) as *mut __m256i, a30);
                _mm256_storeu_si256(c3.add(p + 8) as *mut __m256i, a31);
                p += 16;
            }
            while p + 8 <= pix {
                let mut a0 = _mm256_loadu_si256(c0.add(p) as *const __m256i);
                let mut a1 = _mm256_loadu_si256(c1.add(p) as *const __m256i);
                let mut a2 = _mm256_loadu_si256(c2.add(p) as *const __m256i);
                let mut a3 = _mm256_loadu_si256(c3.add(p) as *const __m256i);
                for kkp in 0..kp {
                    let v = _mm256_loadu_si256(xp.add(kkp * pix + p) as *const __m256i);
                    let wv0 = *w0r.add(kkp);
                    if wv0 != 0 {
                        a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(v, _mm256_set1_epi32(wv0)));
                    }
                    let wv1 = *w1r.add(kkp);
                    if wv1 != 0 {
                        a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(v, _mm256_set1_epi32(wv1)));
                    }
                    let wv2 = *w2r.add(kkp);
                    if wv2 != 0 {
                        a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(v, _mm256_set1_epi32(wv2)));
                    }
                    let wv3 = *w3r.add(kkp);
                    if wv3 != 0 {
                        a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(v, _mm256_set1_epi32(wv3)));
                    }
                }
                _mm256_storeu_si256(c0.add(p) as *mut __m256i, a0);
                _mm256_storeu_si256(c1.add(p) as *mut __m256i, a1);
                _mm256_storeu_si256(c2.add(p) as *mut __m256i, a2);
                _mm256_storeu_si256(c3.add(p) as *mut __m256i, a3);
                p += 8;
            }
            if p < pix {
                wx_axpy_packed_tail(kp, pix, p, w0r, xp, c0);
                wx_axpy_packed_tail(kp, pix, p, w1r, xp, c1);
                wx_axpy_packed_tail(kp, pix, p, w2r, xp, c2);
                wx_axpy_packed_tail(kp, pix, p, w3r, xp, c3);
            }
            j += 4;
        }
        while j < out_dim {
            let wrow = wp.add(j * kp);
            let crow = cp.add(j * pix);
            let mut p = 0usize;
            while p + 8 <= pix {
                let mut acc = _mm256_loadu_si256(crow.add(p) as *const __m256i);
                for kkp in 0..kp {
                    let wv = *wrow.add(kkp);
                    if wv == 0 {
                        continue;
                    }
                    let pair = _mm256_set1_epi32(wv);
                    let xv = _mm256_loadu_si256(xp.add(kkp * pix + p) as *const __m256i);
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, pair));
                }
                _mm256_storeu_si256(crow.add(p) as *mut __m256i, acc);
                p += 8;
            }
            if p < pix {
                wx_axpy_packed_tail(kp, pix, p, wrow, xp, crow);
            }
            j += 1;
        }
    }

    /// AVX2 [`super::wx_axpy`] general body: for each output row, a
    /// 32-pixel strip (4 × 8 `i32` lanes) accumulates in registers across
    /// the whole `k` extent — broadcast code, `vpmulld` against the
    /// contiguous pixel row, wrapping lane adds — then an 8-pixel loop and
    /// a scalar tail finish the row. Exact for **arbitrary** `i32` counts
    /// (wrapping lane products); slower than the `pmaddwd` body because
    /// `vpmulld` double-pumps on most cores. Zero codes skip their pass,
    /// and the output is touched once per strip.
    ///
    /// # Safety
    ///
    /// Caller must guarantee `w16.len() ≥ out_dim·k`, `x.len() ≥ k·pix`,
    /// `c.len() ≥ out_dim·pix`, and that the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn wx_axpy_mullo_avx2(
        out_dim: usize,
        k: usize,
        pix: usize,
        w16: &[i16],
        x: &[i32],
        c: &mut [i32],
    ) {
        let xp = x.as_ptr();
        let wp = w16.as_ptr();
        for j in 0..out_dim {
            let wrow = wp.add(j * k);
            let crow = c.as_mut_ptr().add(j * pix);
            let mut p = 0usize;
            while p + 32 <= pix {
                let mut acc0 = _mm256_loadu_si256(crow.add(p) as *const __m256i);
                let mut acc1 = _mm256_loadu_si256(crow.add(p + 8) as *const __m256i);
                let mut acc2 = _mm256_loadu_si256(crow.add(p + 16) as *const __m256i);
                let mut acc3 = _mm256_loadu_si256(crow.add(p + 24) as *const __m256i);
                for kk in 0..k {
                    let wv = *wrow.add(kk);
                    if wv == 0 {
                        continue;
                    }
                    let code = _mm256_set1_epi32(wv as i32);
                    let base = xp.add(kk * pix + p);
                    let x0 = _mm256_loadu_si256(base as *const __m256i);
                    let x1 = _mm256_loadu_si256(base.add(8) as *const __m256i);
                    let x2 = _mm256_loadu_si256(base.add(16) as *const __m256i);
                    let x3 = _mm256_loadu_si256(base.add(24) as *const __m256i);
                    acc0 = _mm256_add_epi32(acc0, _mm256_mullo_epi32(x0, code));
                    acc1 = _mm256_add_epi32(acc1, _mm256_mullo_epi32(x1, code));
                    acc2 = _mm256_add_epi32(acc2, _mm256_mullo_epi32(x2, code));
                    acc3 = _mm256_add_epi32(acc3, _mm256_mullo_epi32(x3, code));
                }
                _mm256_storeu_si256(crow.add(p) as *mut __m256i, acc0);
                _mm256_storeu_si256(crow.add(p + 8) as *mut __m256i, acc1);
                _mm256_storeu_si256(crow.add(p + 16) as *mut __m256i, acc2);
                _mm256_storeu_si256(crow.add(p + 24) as *mut __m256i, acc3);
                p += 32;
            }
            while p + 8 <= pix {
                let mut acc = _mm256_loadu_si256(crow.add(p) as *const __m256i);
                for kk in 0..k {
                    let wv = *wrow.add(kk);
                    if wv == 0 {
                        continue;
                    }
                    let code = _mm256_set1_epi32(wv as i32);
                    let xv = _mm256_loadu_si256(xp.add(kk * pix + p) as *const __m256i);
                    acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(xv, code));
                }
                _mm256_storeu_si256(crow.add(p) as *mut __m256i, acc);
                p += 8;
            }
            if p < pix {
                for kk in 0..k {
                    let wv = *wrow.add(kk) as i32;
                    if wv == 0 {
                        continue;
                    }
                    let xrow = xp.add(kk * pix);
                    for pp in p..pix {
                        let cv = crow.add(pp);
                        *cv = (*cv).wrapping_add(wv.wrapping_mul(*xrow.add(pp)));
                    }
                }
            }
        }
    }

    /// AVX2 [`super::gemm_tile_f32`]: 4-row × 8-lane register tile, each
    /// element accumulating ascending `k` with separate multiply then add
    /// (bit-identical to the scalar kernel).
    ///
    /// # Safety
    ///
    /// Same pointer/stride contract as [`super::gemm_tile_f32`]; requires
    /// AVX2.
    #[allow(clippy::too_many_arguments)] // flat pointer+stride form keeps the hot kernel call free of view structs
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_tile_f32_avx2(
        mb: usize,
        k: usize,
        nb: usize,
        a: *const f32,
        lda: usize,
        b: *const f32,
        ldb: usize,
        c: *mut f32,
        ldc: usize,
    ) {
        const LANES: usize = 8;
        let mut j = 0;
        while j + LANES <= nb {
            let mut i = 0;
            while i + 4 <= mb {
                let c0 = c.add(i * ldc + j);
                let c1 = c.add((i + 1) * ldc + j);
                let c2 = c.add((i + 2) * ldc + j);
                let c3 = c.add((i + 3) * ldc + j);
                let mut acc0 = _mm256_loadu_ps(c0);
                let mut acc1 = _mm256_loadu_ps(c1);
                let mut acc2 = _mm256_loadu_ps(c2);
                let mut acc3 = _mm256_loadu_ps(c3);
                for kk in 0..k {
                    let bv = _mm256_loadu_ps(b.add(kk * ldb + j));
                    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(*a.add(i * lda + kk)), bv));
                    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(*a.add((i + 1) * lda + kk)), bv));
                    acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(*a.add((i + 2) * lda + kk)), bv));
                    acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(*a.add((i + 3) * lda + kk)), bv));
                }
                _mm256_storeu_ps(c0, acc0);
                _mm256_storeu_ps(c1, acc1);
                _mm256_storeu_ps(c2, acc2);
                _mm256_storeu_ps(c3, acc3);
                i += 4;
            }
            while i < mb {
                let cr = c.add(i * ldc + j);
                let mut acc = _mm256_loadu_ps(cr);
                for kk in 0..k {
                    let bv = _mm256_loadu_ps(b.add(kk * ldb + j));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(*a.add(i * lda + kk)), bv));
                }
                _mm256_storeu_ps(cr, acc);
                i += 1;
            }
            j += LANES;
        }
        if j < nb {
            // Column tail: scalar, same ascending-k mul-then-add order.
            gemm_tail_cols(mb, k, j, nb, a, lda, b, ldb, c, ldc);
        }
    }

    /// SSE2 [`super::gemm_tile_f32`]: 4-row × 4-lane register tile.
    ///
    /// # Safety
    ///
    /// Same pointer/stride contract as [`super::gemm_tile_f32`]; SSE2 is
    /// part of the x86-64 baseline.
    #[allow(clippy::too_many_arguments)] // flat pointer+stride form keeps the hot kernel call free of view structs
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn gemm_tile_f32_sse2(
        mb: usize,
        k: usize,
        nb: usize,
        a: *const f32,
        lda: usize,
        b: *const f32,
        ldb: usize,
        c: *mut f32,
        ldc: usize,
    ) {
        const LANES: usize = 4;
        let mut j = 0;
        while j + LANES <= nb {
            let mut i = 0;
            while i + 4 <= mb {
                let c0 = c.add(i * ldc + j);
                let c1 = c.add((i + 1) * ldc + j);
                let c2 = c.add((i + 2) * ldc + j);
                let c3 = c.add((i + 3) * ldc + j);
                let mut acc0 = _mm_loadu_ps(c0);
                let mut acc1 = _mm_loadu_ps(c1);
                let mut acc2 = _mm_loadu_ps(c2);
                let mut acc3 = _mm_loadu_ps(c3);
                for kk in 0..k {
                    let bv = _mm_loadu_ps(b.add(kk * ldb + j));
                    acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_set1_ps(*a.add(i * lda + kk)), bv));
                    acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_set1_ps(*a.add((i + 1) * lda + kk)), bv));
                    acc2 = _mm_add_ps(acc2, _mm_mul_ps(_mm_set1_ps(*a.add((i + 2) * lda + kk)), bv));
                    acc3 = _mm_add_ps(acc3, _mm_mul_ps(_mm_set1_ps(*a.add((i + 3) * lda + kk)), bv));
                }
                _mm_storeu_ps(c0, acc0);
                _mm_storeu_ps(c1, acc1);
                _mm_storeu_ps(c2, acc2);
                _mm_storeu_ps(c3, acc3);
                i += 4;
            }
            while i < mb {
                let cr = c.add(i * ldc + j);
                let mut acc = _mm_loadu_ps(cr);
                for kk in 0..k {
                    let bv = _mm_loadu_ps(b.add(kk * ldb + j));
                    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(*a.add(i * lda + kk)), bv));
                }
                _mm_storeu_ps(cr, acc);
                i += 1;
            }
            j += LANES;
        }
        if j < nb {
            gemm_tail_cols(mb, k, j, nb, a, lda, b, ldb, c, ldc);
        }
    }

    /// Scalar column tail shared by both f32 tiles: columns `j0..nb`, every
    /// row, ascending `k`, separate multiply then add.
    ///
    /// # Safety
    ///
    /// Same pointer/stride contract as [`super::gemm_tile_f32`].
    #[allow(clippy::too_many_arguments)] // flat pointer+stride form matches its callers
    unsafe fn gemm_tail_cols(
        mb: usize,
        k: usize,
        j0: usize,
        nb: usize,
        a: *const f32,
        lda: usize,
        b: *const f32,
        ldb: usize,
        c: *mut f32,
        ldc: usize,
    ) {
        for i in 0..mb {
            for j in j0..nb {
                let cv = c.add(i * ldc + j);
                let mut acc = *cv;
                for kk in 0..k {
                    acc += *a.add(i * lda + kk) * *b.add(kk * ldb + j);
                }
                *cv = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *seed >> 33
    }

    #[test]
    fn level_order_and_clamp() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse2);
        assert!(SimdLevel::Sse2 < SimdLevel::Avx2);
        // A scoped request above detection clamps instead of faulting.
        with_simd_level(SimdLevel::Avx2, || {
            assert_eq!(simd_level(), SimdLevel::Avx2.min(detected_simd()));
        });
        with_simd_level(SimdLevel::Scalar, || {
            assert_eq!(simd_level(), SimdLevel::Scalar);
        });
    }

    #[test]
    fn with_simd_level_scopes_and_restores() {
        let outer = simd_level();
        let inner = with_simd_level(SimdLevel::Scalar, simd_level);
        assert_eq!(inner, SimdLevel::Scalar);
        assert_eq!(simd_level(), outer);
        let caught = std::panic::catch_unwind(|| {
            with_simd_level(SimdLevel::Scalar, || panic!("boom"))
        });
        assert!(caught.is_err());
        assert_eq!(simd_level(), outer);
    }

    #[test]
    fn dot_tiles_matches_scalar_at_every_level() {
        let mut seed = 3u64;
        for &(k, nf, ns) in &[(0, 1, 1), (1, 1, 1), (7, 3, 2), (16, 4, 4), (33, 9, 5), (48, 13, 3)] {
            let fast: Vec<i16> =
                (0..nf * k).map(|_| (pseudo(&mut seed) % 255) as i16 - 127).collect();
            let slow: Vec<i16> = (0..ns * k).map(|_| (pseudo(&mut seed) % 256) as i16).collect();
            let stride = nf + 2; // wider-than-nf stride must be respected
            let init: Vec<i32> =
                (0..ns * stride).map(|_| (pseudo(&mut seed) % 100) as i32 - 50).collect();
            let mut want = init.clone();
            dot_tiles_scalar(k, &fast, nf, &slow, ns, &mut want, stride);
            for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                let level = level.min(detected_simd());
                let mut got = init.clone();
                dot_tiles(level, k, &fast, nf, &slow, ns, &mut got, stride);
                assert_eq!(got, want, "level={level:?} k={k} nf={nf} ns={ns}");
            }
        }
    }

    #[test]
    fn gemm_tile_matches_scalar_bitwise_at_every_level() {
        let mut seed = 11u64;
        for &(m, k, n) in &[(1, 1, 1), (4, 16, 8), (5, 17, 11), (9, 3, 21), (3, 40, 4)] {
            let a: Vec<f32> =
                (0..m * k).map(|_| (pseudo(&mut seed) % 2000) as f32 / 900.0 - 1.0).collect();
            let b: Vec<f32> =
                (0..k * n).map(|_| (pseudo(&mut seed) % 2000) as f32 / 900.0 - 1.0).collect();
            let init: Vec<f32> = (0..m * n).map(|_| (pseudo(&mut seed) % 7) as f32).collect();
            let mut want = init.clone();
            // SAFETY: dense panels, strides equal the row lengths.
            unsafe {
                gemm_tile_f32_scalar(m, k, n, a.as_ptr(), k, b.as_ptr(), n, want.as_mut_ptr(), n);
            }
            for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                let level = level.min(detected_simd());
                let mut got = init.clone();
                // SAFETY: dense panels, strides equal the row lengths.
                unsafe {
                    gemm_tile_f32(level, m, k, n, a.as_ptr(), k, b.as_ptr(), n, got.as_mut_ptr(), n);
                }
                for (x, y) in got.iter().zip(want.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "level={level:?} m={m} k={k} n={n}");
                }
            }
        }
    }
}
