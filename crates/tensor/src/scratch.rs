//! Thread-local scratch arena for allocation-free steady-state kernels.
//!
//! Inference on a deployed network executes the same sequence of kernels
//! with the same buffer sizes on every call — im2col columns, GEMM
//! accumulators, stage outputs, spike-count buffers. Allocating those
//! per call is pure churn, so the hot paths borrow buffers from a
//! per-thread pool instead: [`take_f32`] / [`take_i32`] hand out a zeroed
//! buffer (reusing retained capacity when a previously [`put_f32`] /
//! [`put_i32`] buffer can hold it) and the caller returns it when done.
//! After a warm-up call, a fixed-shape pipeline hits the pool on every
//! take and performs **zero heap allocations** — which
//! [`fresh_allocations`] lets tests and benchmarks assert directly.
//!
//! The pool is thread-local: no locks, no cross-thread sharing, and the
//! worker threads of [`crate::parallel`] each get their own pool. Those
//! workers are persistent (parked between jobs, not respawned per call), so
//! scratch reuse materializes on every thread that runs kernels — the
//! serial (`QSNC_THREADS=1`) inference path that the single-core deployment
//! benchmarks measure, and the pool workers alike.
//!
//! Telemetry (when enabled) tallies pool traffic under the frozen names
//! `tensor.scratch.take` and `tensor.scratch.alloc`; their ratio is the
//! arena hit rate.

use std::cell::RefCell;

/// Retained buffers plus per-thread traffic counters.
struct Pool {
    f32s: Vec<Vec<f32>>,
    i32s: Vec<Vec<i32>>,
    i16s: Vec<Vec<i16>>,
    u8s: Vec<Vec<u8>>,
    takes: u64,
    allocs: u64,
}

impl Pool {
    const fn new() -> Self {
        Pool {
            f32s: Vec::new(),
            i32s: Vec::new(),
            i16s: Vec::new(),
            u8s: Vec::new(),
            takes: 0,
            allocs: 0,
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = const { RefCell::new(Pool::new()) };
}

/// Upper bound on buffers retained per element type; beyond this, returned
/// buffers are dropped instead of pooled (a leak guard, not a perf knob —
/// the inference pipeline holds well under this many live buffers).
const MAX_POOLED: usize = 32;

macro_rules! impl_take_put {
    ($take:ident, $put:ident, $field:ident, $t:ty, $zero:expr) => {
        /// Borrows a zeroed buffer of exactly `len` elements from this
        /// thread's pool, reusing retained capacity when possible. Return
        /// it with the matching `put` function once done; dropping it
        /// instead is safe but forfeits the reuse.
        pub fn $take(len: usize) -> Vec<$t> {
            let (mut buf, fresh) = POOL.with(|p| {
                let mut p = p.borrow_mut();
                p.takes += 1;
                // Prefer the smallest retained buffer that can hold `len`
                // without reallocating; fall back to any retained buffer
                // (its capacity grows once, then stabilizes).
                let pick = p
                    .$field
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.capacity() >= len)
                    .min_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i);
                match pick {
                    Some(i) => (p.$field.swap_remove(i), false),
                    None => {
                        p.allocs += 1;
                        match p.$field.pop() {
                            Some(b) => (b, true), // will grow: counts as alloc
                            None => (Vec::new(), true),
                        }
                    }
                }
            });
            if fresh && qsnc_telemetry::enabled() {
                qsnc_telemetry::counter_add("tensor.scratch.alloc", 1);
            }
            if qsnc_telemetry::enabled() {
                qsnc_telemetry::counter_add("tensor.scratch.take", 1);
            }
            buf.clear();
            buf.resize(len, $zero);
            buf
        }

        /// Returns a buffer to this thread's pool for later reuse.
        pub fn $put(buf: Vec<$t>) {
            if buf.capacity() == 0 {
                return;
            }
            POOL.with(|p| {
                let mut p = p.borrow_mut();
                if p.$field.len() < MAX_POOLED {
                    p.$field.push(buf);
                }
            });
        }
    };
}

impl_take_put!(take_f32, put_f32, f32s, f32, 0.0f32);
impl_take_put!(take_i32, put_i32, i32s, i32, 0i32);
// i16 panels: the widened operands the SIMD dot-product kernels consume
// (spike counts and im2row pixels widened from i32, weight codes from i8).
impl_take_put!(take_i16, put_i16, i16s, i16, 0i16);
// Byte buffers: wire-frame payloads in the serving layer, whose connection
// threads are persistent and so amortize the pool exactly like the serial
// inference path does.
impl_take_put!(take_u8, put_u8, u8s, u8, 0u8);

/// Number of pool misses (takes that had to allocate or grow) on this
/// thread since the process started. A steady-state loop over fixed-shape
/// work must not advance this counter — the property the allocation-free
/// pipeline tests assert.
pub fn fresh_allocations() -> u64 {
    POOL.with(|p| p.borrow().allocs)
}

/// Number of [`take_f32`]/[`take_i32`] calls on this thread. Together with
/// [`fresh_allocations`] this gives the arena hit rate.
pub fn takes() -> u64 {
    POOL.with(|p| p.borrow().takes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_requested_len() {
        let mut b = take_f32(17);
        assert_eq!(b.len(), 17);
        assert!(b.iter().all(|&v| v == 0.0));
        b.fill(3.0);
        put_f32(b);
        // Reused buffer must come back zeroed.
        let b2 = take_f32(17);
        assert!(b2.iter().all(|&v| v == 0.0));
        put_f32(b2);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        // Warm up holding both buffers live at once, mirroring the loop —
        // taken sequentially, the second take would just reuse the first
        // buffer and the pool would retain only one.
        let a = take_i32(64);
        let b = take_i32(32);
        put_i32(a);
        put_i32(b);
        let base = fresh_allocations();
        for _ in 0..100 {
            let a = take_i32(64);
            let b = take_i32(32);
            put_i32(a);
            put_i32(b);
        }
        assert_eq!(fresh_allocations(), base, "steady-state takes must hit the pool");
    }

    #[test]
    fn smaller_request_reuses_larger_buffer() {
        let big = take_f32(1000);
        put_f32(big);
        let base = fresh_allocations();
        let small = take_f32(10);
        assert_eq!(fresh_allocations(), base);
        put_f32(small);
    }

    #[test]
    fn mixed_sizes_pick_best_fit() {
        let a = take_f32(100);
        let b = take_f32(1000);
        put_f32(a);
        put_f32(b);
        let base = fresh_allocations();
        // Both sizes live simultaneously: each take must find its buffer.
        let a = take_f32(100);
        let b = take_f32(1000);
        assert_eq!(fresh_allocations(), base);
        assert!(a.capacity() >= 100 && b.capacity() >= 1000);
        put_f32(a);
        put_f32(b);
    }
}
